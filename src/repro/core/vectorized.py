"""Vectorized replay substrate: segmented batch kernels over traces.

The fused engine (:func:`repro.core.replay.replay_fused`) already
decodes each event once, but still dispatches one Python ``hook(*args)``
per event per protocol.  This module removes the per-event dispatch
entirely: a trace is lowered to numpy columns
(:class:`~repro.core.compiled.ArrayColumns`), partitioned into
contiguous per-host event segments, and each protocol's piggyback /
checkpoint rules run as *batch kernels* -- segmented scans and boolean
masks over whole columns (see the ``vectorized_replay`` classmethods in
:mod:`repro.protocols`).

Row-block batching
------------------

A :class:`VectorizedTrace` is built from one or *several* traces at
once ("blocks", e.g. one per seed or sweep point, keyed by the
content-addressed trace cache).  Blocks are laid out as consecutive
row blocks of the same concatenated arrays -- segment ``b * n_hosts +
h`` holds host *h* of block *b* -- so one kernel invocation replays a
whole (point, seed) grid: batching adds segments, not passes.

The causality fixpoint
----------------------

Piggyback values at sends depend on the sender's state at send time,
which depends on earlier receives, which carry earlier sends'
piggybacks: the one genuinely sequential part of replay.  Kernels
resolve it by :func:`fixpoint` iteration: start every piggyback at its
lower bound, recompute all per-host state from the current piggyback
array in one batch pass, re-derive the piggybacks, repeat until the
array stops changing.  Every protocol operator here is *monotone*
(piggybacks never shrink when inputs grow) and the true execution is a
fixpoint; because a send's piggyback depends only on strictly earlier
events, that fixpoint is unique (induction over event order), so
convergence yields the reference execution bit-exactly -- the
three-way equivalence suite checks this against the reference engine
for every vectorizable protocol.

Iteration counts matter, and *what* is iterated matters more: a
fixpoint over protocol **values** (sequence numbers) needs one pass
per effective index increase -- the longest causal chain of ``+1``
steps, which grows with trace length.  The index family therefore
never iterates on values.  Instead :func:`mask_closure` runs the
fixpoint over **reachability bitmasks**: which basic triggers have
causally reached each host at each point.  Those sources are static
(a basic's bit does not depend on any protocol value), so each pass
extends every causal chain by at least one whole message hop and the
iteration count is the communication graph's hop depth -- a handful
regardless of how high the indices climb.  Protocol values are then
recovered from the closure by a chronological walk over the (rare)
basic triggers plus one segmented scan; see
:func:`index_trajectory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core import compiled as _compiled
from repro.core.compiled import array_columns
from repro.core.trace import Trace


class VectorizationError(RuntimeError):
    """A vectorized replay is impossible (protocol ships no kernels)
    or a kernel could not complete (fixpoint cap exceeded)."""


# ---------------------------------------------------------------------------
# segmented-array primitives
# ---------------------------------------------------------------------------

def seg_cumsum(values, starts):
    """Per-segment inclusive cumulative sum (segments are the
    contiguous ``values[starts[i]:starts[i+1]]`` slices)."""
    import numpy as np

    if values.shape[0] == 0:
        return values.copy()
    total = np.cumsum(values)
    lengths = np.diff(starts)
    # starts[i] == len(values) for trailing empty segments; clip the
    # gather -- those entries repeat zero times anyway.
    first = np.minimum(starts[:-1], values.shape[0] - 1)
    base = np.repeat(total[first] - values[first], lengths)
    return total - base


def seg_scan(values, starts, ufunc):
    """Per-segment inclusive ``ufunc.accumulate`` (along axis 0 for 2-D
    values).  Segment count is small (hosts x blocks), so a
    per-segment accumulate loop beats any branch-free encoding."""
    import numpy as np  # noqa: F401 - callers pass numpy ufuncs

    out = np.empty_like(values)
    for i in range(len(starts) - 1):
        lo, hi = starts[i], starts[i + 1]
        if hi > lo:
            ufunc.accumulate(values[lo:hi], axis=0, out=out[lo:hi])
    return out


def seg_cummax(values, starts):
    """Per-segment inclusive running maximum (see :func:`seg_scan`)."""
    import numpy as np

    return seg_scan(values, starts, np.maximum)


def seg_shift(values, starts, fill):
    """Shift *values* down by one within each segment (exclusive view:
    ``out[k]`` is ``values[k-1]``, or *fill* at a segment start)."""
    import numpy as np  # noqa: F401 - dtype-agnostic, kept for symmetry

    out = values.copy()
    if values.shape[0] == 0:
        return out
    out[1:] = values[:-1]
    heads = starts[:-1]
    out[heads[heads < values.shape[0]]] = fill
    return out


def gather(arr, idx, default):
    """``arr[idx]`` with ``idx == -1`` entries mapped to *default*."""
    import numpy as np

    if arr.shape[0] == 0:
        shape = idx.shape if arr.ndim == 1 else idx.shape + arr.shape[1:]
        return np.full(shape, default, dtype=arr.dtype)
    out = arr[np.maximum(idx, 0)]
    if arr.ndim == 1:
        return np.where(idx >= 0, out, default)
    out[idx < 0] = default
    return out


def seg_counts(mask, starts):
    """Number of True entries of *mask* per segment."""
    import numpy as np

    cum = np.concatenate(([0], np.cumsum(mask, dtype=np.int64)))
    return cum[starts[1:]] - cum[starts[:-1]]


def fixpoint(initial, step: Callable, limit: int, label: str):
    """Iterate ``step`` from *initial* until the array stops changing.

    ``step`` must be monotone and bounded (every protocol operator in
    this module is); *limit* is a tripwire far above any reachable
    iteration count, raising :class:`VectorizationError` instead of
    spinning.  Returns the converged array.
    """
    import numpy as np

    current = initial
    for _ in range(limit):
        new = step(current)
        if np.array_equal(new, current):
            return current
        current = new
    raise VectorizationError(
        f"{label}: piggyback fixpoint did not converge within {limit} "
        "iterations (deeper than the event count -- this indicates a "
        "kernel bug, not a workload property)"
    )


# ---------------------------------------------------------------------------
# the partitioned trace
# ---------------------------------------------------------------------------

@dataclass(slots=True, frozen=True)
class _Subset:
    """One event class (receives, sends, ...) in segment-major order.

    ``idx`` holds positions in the *permuted* event domain, ``starts``
    the segment boundaries within these arrays (length
    ``n_segments + 1``).
    """

    idx: "np.ndarray"  # noqa: F821 - numpy imported lazily
    starts: "np.ndarray"  # noqa: F821
    time: "np.ndarray"  # noqa: F821
    slot: Optional["np.ndarray"] = None  # noqa: F821


@dataclass(slots=True, frozen=True)
class VectorizedTrace:
    """One or more traces lowered to per-host segmented numpy columns.

    Events of all blocks are concatenated and stably permuted into
    segment-major order: segment ``b * n_hosts + h`` is the time-ordered
    event stream of host *h* in block *b*, a contiguous slice
    ``[seg_starts[s], seg_starts[s+1])`` of every permuted column.
    ``perm`` maps a permuted position back to the event's position in
    the concatenated original order (block offsets included) -- the
    total order checkpoint logs are materialized in.

    Send slots are globally renumbered across blocks (block *b*'s slots
    shifted by the preceding blocks' send counts), so one flat
    piggyback array serves the whole batch.
    """

    blocks: tuple
    n_blocks: int
    n_hosts: int
    n_segments: int
    n_events: int
    n_sends: int
    #: Permuted position -> concatenated original event position.
    perm: "np.ndarray"  # noqa: F821
    #: Segment id of each permuted position (sorted, block-major).
    seg_p: "np.ndarray"  # noqa: F821
    etype_p: "np.ndarray"  # noqa: F821
    time_p: "np.ndarray"  # noqa: F821
    cell_p: "np.ndarray"  # noqa: F821
    slot_p: "np.ndarray"  # noqa: F821
    seg_starts: "np.ndarray"  # noqa: F821
    #: Receives / sends / basic triggers (CELL_SWITCH + DISCONNECT) /
    #: message events (SEND + RECEIVE) / cell-value changes
    #: (CELL_SWITCH + RECONNECT), each in segment-major order.
    recv: _Subset
    send: _Subset
    basic: _Subset
    msg: _Subset
    change: _Subset
    #: Cell value after each ``change`` event.
    change_cell: "np.ndarray"  # noqa: F821
    #: Index into the recv/send/basic/change subsets of the last such
    #: event in the same segment at-or-before each permuted position
    #: (-1: none; at a position of the same class, includes itself).
    last_recv_at: "np.ndarray"  # noqa: F821
    last_send_at: "np.ndarray"  # noqa: F821
    last_basic_at: "np.ndarray"  # noqa: F821
    last_change_at: "np.ndarray"  # noqa: F821
    #: Mutable cache for derived, protocol-independent artifacts
    #: (notably the :func:`mask_closure` shared by the whole index
    #: family).  Contents-mutable despite the frozen dataclass.
    scratch: dict = field(default_factory=dict)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_traces(cls, traces: Sequence[Trace]) -> "VectorizedTrace":
        """Partition *traces* into one segment-major row-block layout."""
        import numpy as np

        if not traces:
            raise ValueError("need at least one trace")
        blocks = tuple(array_columns(t) for t in traces)
        n_hosts = blocks[0].n_hosts
        for b in blocks[1:]:
            if b.n_hosts != n_hosts:
                raise ValueError(
                    "all batched traces must share n_hosts "
                    f"({n_hosts} vs {b.n_hosts})"
                )
        n_blocks = len(blocks)
        n_segments = n_blocks * n_hosts

        if n_blocks == 1:
            (b0,) = blocks
            etype, time, cell, slot = b0.etype, b0.time, b0.cell, b0.slot
            seg = b0.host
        else:
            etype = np.concatenate([b.etype for b in blocks])
            time = np.concatenate([b.time for b in blocks])
            cell = np.concatenate([b.cell for b in blocks])
            seg = np.concatenate(
                [b.host + i * n_hosts for i, b in enumerate(blocks)]
            )
            slot_off = [0]
            for b in blocks[:-1]:
                slot_off.append(slot_off[-1] + b.n_sends)
            slot = np.concatenate(
                [
                    np.where(b.slot >= 0, b.slot + off, -1)
                    for b, off in zip(blocks, slot_off)
                ]
            )
        n_events = int(etype.shape[0])
        n_sends = int(sum(b.n_sends for b in blocks))

        perm = np.argsort(seg, kind="stable")
        seg_p = seg[perm]
        etype_p = etype[perm]
        time_p = time[perm]
        cell_p = cell[perm]
        slot_p = slot[perm]
        seg_starts = np.concatenate(
            ([0], np.cumsum(np.bincount(seg_p, minlength=n_segments)))
        )
        ev_lengths = np.diff(seg_starts)

        is_recv = etype_p == _compiled.RECEIVE
        is_send = etype_p == _compiled.SEND
        is_basic = (etype_p == _compiled.CELL_SWITCH) | (
            etype_p == _compiled.DISCONNECT
        )
        is_msg = is_recv | is_send
        is_change = (etype_p == _compiled.CELL_SWITCH) | (
            etype_p == _compiled.RECONNECT
        )

        def subset(mask, with_slot=False):
            idx = np.flatnonzero(mask)
            counts = np.bincount(seg_p[idx], minlength=n_segments)
            starts = np.concatenate(([0], np.cumsum(counts)))
            return _Subset(
                idx=idx,
                starts=starts,
                time=time_p[idx],
                slot=slot_p[idx] if with_slot else None,
            )

        def last_at(mask, sub):
            cnt = seg_cumsum(mask.astype(np.int64), seg_starts)
            base = np.repeat(sub.starts[:-1], ev_lengths)
            return np.where(cnt > 0, base + cnt - 1, -1)

        recv = subset(is_recv, with_slot=True)
        send = subset(is_send, with_slot=True)
        basic = subset(is_basic)
        msg = subset(is_msg)
        change = subset(is_change)

        return cls(
            blocks=blocks,
            n_blocks=n_blocks,
            n_hosts=n_hosts,
            n_segments=n_segments,
            n_events=n_events,
            n_sends=n_sends,
            perm=perm,
            seg_p=seg_p,
            etype_p=etype_p,
            time_p=time_p,
            cell_p=cell_p,
            slot_p=slot_p,
            seg_starts=seg_starts,
            recv=recv,
            send=send,
            basic=basic,
            msg=msg,
            change=change,
            change_cell=cell_p[change.idx],
            last_recv_at=last_at(is_recv, recv),
            last_send_at=last_at(is_send, send),
            last_basic_at=last_at(is_basic, basic),
            last_change_at=last_at(is_change, change),
        )

    # -- conveniences ------------------------------------------------------
    def seg_of_subset(self, sub: _Subset) -> "np.ndarray":  # noqa: F821
        """Segment id of every entry of *sub*."""
        return self.seg_p[sub.idx]

    def block_bounds(self, sub: _Subset, block: int) -> "tuple[int, int]":
        """Slice bounds of *sub*'s arrays belonging to *block*."""
        lo = int(sub.starts[block * self.n_hosts])
        hi = int(sub.starts[(block + 1) * self.n_hosts])
        return lo, hi

    def seg_last(self, values, sub: _Subset, fill):
        """Per segment: last entry of *values* (aligned with *sub*), or
        *fill* for segments without such events."""
        import numpy as np

        out = np.full(self.n_segments, fill, dtype=values.dtype)
        ends = sub.starts[1:]
        nonempty = ends > sub.starts[:-1]
        out[nonempty] = values[ends[nonempty] - 1]
        return out


def vectorized_trace(trace: Trace) -> VectorizedTrace:
    """Single-block :class:`VectorizedTrace` of *trace*, cached on the
    instance like :meth:`Trace.compiled` (keyed on the event count)."""
    cached = getattr(trace, "_vectorized_cache", None)
    if cached is not None and cached[0] == len(trace.events):
        return cached[1]
    vt = VectorizedTrace.from_traces([trace])
    trace._vectorized_cache = (len(trace.events), vt)
    return vt


# ---------------------------------------------------------------------------
# reachability closure: which basic triggers have causally reached whom
# ---------------------------------------------------------------------------

@dataclass(slots=True, frozen=True)
class _MaskClosure:
    """First-arrival schedule of every basic trigger at every host.

    Protocol-independent: derived purely from the message graph and the
    basic-trigger positions, so one closure serves BCS, QBC and both
    no-send variants (it is cached in ``vt.scratch``).  Each basic
    trigger is a *source*; ``rarr_*`` lists, per segment and in
    position order, the receive positions where a source's bit first
    arrives **via a message**; ``t_*`` additionally includes each
    source's instant arrival at its own host.  ``*_starts`` are
    segment boundaries (length ``n_segments + 1``).
    """

    n_sources: int
    rarr_pos: "np.ndarray"  # noqa: F821 - permuted event positions
    rarr_src: "np.ndarray"  # noqa: F821 - source (basic-subset) ids
    rarr_row: "np.ndarray"  # noqa: F821 - receive-subset row of arrival
    rarr_seg: "np.ndarray"  # noqa: F821
    rarr_starts: "np.ndarray"  # noqa: F821


def mask_closure(vt: VectorizedTrace) -> _MaskClosure:
    """Compute (or fetch cached) the causal reachability closure of
    *vt*'s basic triggers.

    Sources are packed into uint64 bitmask words.  The fixpoint runs
    over per-send *mask* piggybacks -- set union instead of max -- so
    its sources are static and each pass extends reachability by a
    full message hop: iterations track the hop depth of the
    communication graph, not the magnitude of any protocol counter.
    The converged per-receive masks are then diffed along each host's
    timeline to extract first arrivals; everything downstream works on
    those (tiny) arrival lists, never on masks again.
    """
    cached = vt.scratch.get("mask_closure")
    if cached is not None:
        return cached
    import numpy as np

    recv, send, basic = vt.recv, vt.send, vt.basic
    nb = int(basic.idx.shape[0])
    src_ids = np.arange(nb, dtype=np.int64)

    # Bits are allocated per block: sources can never cross blocks
    # (separate traces), so block-local bit positions keep the word
    # count at the densest single block instead of growing with the
    # batch.  A block-local bit maps back to source id
    # ``block_base[block] + bit``.
    seg_of_basic = vt.seg_p[basic.idx]
    block_of_basic = seg_of_basic // vt.n_hosts
    nb_block = np.bincount(block_of_basic, minlength=vt.n_blocks)
    block_base = np.concatenate(([0], np.cumsum(nb_block)))
    local = src_ids - block_base[block_of_basic]
    n_words = max(1, -(-int(nb_block.max(initial=0)) // 64))

    # Cumulative own-source masks along each segment, sampled at sends.
    own_ev = np.zeros((vt.n_events, n_words), dtype=np.uint64)
    if nb:
        own_ev[basic.idx, local // 64] = np.uint64(1) << (
            local % 64
        ).astype(np.uint64)
    own_cum = seg_scan(own_ev, vt.seg_starts, np.bitwise_or)
    own_at_send = own_cum[send.idx]
    r_before_send = vt.last_recv_at[send.idx]

    state: dict = {}

    def step(pbm):
        rm = pbm[recv.slot]
        rm_incl = seg_scan(rm, recv.starts, np.bitwise_or)
        state["rm_incl"] = rm_incl
        out = np.empty_like(pbm)
        out[send.slot] = own_at_send | gather(rm_incl, r_before_send, 0)
        return out

    pbm0 = np.zeros((vt.n_sends, n_words), dtype=np.uint64)
    if vt.n_sends:
        pbm0[send.slot] = own_at_send
    fixpoint(pbm0, step, vt.n_events + 2, "reachability-closure")
    rm_incl = state["rm_incl"]

    # First arrivals via messages: bits newly present vs the host's
    # previous receive.  Bits only ever get added, so the total number
    # of fresh-bit rows is at most sources x hosts -- the Python bit
    # extraction is O(arrivals), not O(events).
    fresh = rm_incl & ~seg_shift(rm_incl, recv.starts, 0)
    seg_of_recv = vt.seg_p[recv.idx]
    block_base_l = block_base.tolist()
    a_pos: list = []
    a_src: list = []
    a_row: list = []
    a_seg: list = []
    if nb:
        for r in np.flatnonzero(fresh.any(axis=1)).tolist():
            p = int(recv.idx[r])
            s = int(seg_of_recv[r])
            src0 = block_base_l[s // vt.n_hosts]
            for w in range(n_words):
                v = int(fresh[r, w])
                base = src0 + (w << 6)
                while v:
                    low = v & -v
                    a_pos.append(p)
                    a_row.append(r)
                    a_seg.append(s)
                    a_src.append(base + low.bit_length() - 1)
                    v ^= low
    rarr_seg = np.asarray(a_seg, dtype=np.int64)
    clo = _MaskClosure(
        n_sources=nb,
        rarr_pos=np.asarray(a_pos, dtype=np.int64),
        rarr_src=np.asarray(a_src, dtype=np.int64),
        rarr_row=np.asarray(a_row, dtype=np.int64),
        rarr_seg=rarr_seg,
        rarr_starts=np.concatenate(
            ([0], np.cumsum(np.bincount(rarr_seg, minlength=vt.n_segments)))
        ),
    )
    vt.scratch["mask_closure"] = clo
    return clo


# ---------------------------------------------------------------------------
# the index-protocol family kernel (BCS / QBC and their no-send variants)
# ---------------------------------------------------------------------------

@dataclass(slots=True, frozen=True)
class IndexTrajectory:
    """Converged per-host sequence-number dynamics of an index protocol.

    Everything the BCS/QBC family materializes -- forced-checkpoint
    placement, basic-checkpoint indices, final live state.  Placement
    is *sparse*: jumps (receives where the index rule fires) are listed
    explicitly rather than as a full per-receive mask, because a jump
    can only happen where a piggyback delivers a source the receiver
    has not causally seen -- i.e. at a :func:`mask_closure` arrival.
    """

    #: sn value after each basic trigger.
    sn_after_basic: "np.ndarray"  # noqa: F821
    #: Whether the basic opened a new index (always under BCS; QBC's
    #: armed ``rn == sn`` case -- the complement is a replacement).
    armed: "np.ndarray"  # noqa: F821
    #: rn observed at each basic (-1 before any receive).
    rn_at_basic: "np.ndarray"  # noqa: F821
    #: Jump receives, segment-major: segment id, receive-subset row,
    #: and the piggyback index jumped to (parallel arrays).
    jump_seg: "np.ndarray"  # noqa: F821
    jump_row: "np.ndarray"  # noqa: F821
    jump_index: "np.ndarray"  # noqa: F821
    #: Number of jumps per segment.
    n_jump_seg: "np.ndarray"  # noqa: F821
    #: Final sn / rn per segment.
    sn_final: "np.ndarray"  # noqa: F821
    rn_final: "np.ndarray"  # noqa: F821


def index_trajectory(vt: VectorizedTrace, qbc: bool) -> IndexTrajectory:
    """Solve the sn/rn dynamics of the index family over *vt*.

    Three observations make this closed-form over the
    :func:`mask_closure`:

    * Every sn value in the system *originates* at some basic trigger
      (as that basic's ``sn_after``) and only ever propagates by max:
      jumps copy a received piggyback, piggybacks copy the sender's
      sn.  Hence sn of host *h* at position *p* is ``max(0, sn_after
      of every source that causally reached h before p)``, and rn is
      the same max restricted to message arrivals.
    * A receive can therefore only *jump* (raise sn) when it delivers
      a source the receiver had not causally seen -- a closure
      arrival.  Jump placement needs no per-receive pass at all, just
      the (rare) arrival records.
    * ``sn_after`` of the basics is computed in the same walk: by the
      time a source's value arrives anywhere, that source lies
      strictly earlier in global time, so one chronological walk over
      basics and arrivals together sees every needed value already
      resolved.

    The walk is O(basics + arrivals) Python -- both thousands of times
    rarer than events -- so after the (cached) closure nothing here
    scales with the event count.

    ``qbc=False`` gives BCS dynamics (every basic increments),
    ``qbc=True`` QBC's (a basic increments only when armed).  The
    no-send variants share these dynamics *exactly* -- skipping empty
    checkpoints changes how a jump is recorded (rename vs forced take),
    never the sn trajectory -- and reuse this result verbatim.
    """
    import numpy as np

    recv, basic = vt.recv, vt.basic
    clo = mask_closure(vt)
    nb = clo.n_sources

    # Static walk inputs shared by both flavors (and every repeat
    # replay of this trace): one merged chronological event list over
    # basics and arrivals.  Entry code: ``-bi - 1`` for basic *bi*,
    # the arrival index for arrivals.
    ws = vt.scratch.get("index_walk_static")
    if ws is None:
        keys = np.concatenate(
            [vt.perm[basic.idx], vt.perm[clo.rarr_pos]]
        )
        codes = np.concatenate(
            [
                -np.arange(nb, dtype=np.int64) - 1,
                np.arange(clo.rarr_src.shape[0], dtype=np.int64),
            ]
        )
        ws = {
            "codes": codes[np.argsort(keys, kind="stable")].tolist(),
            "b_seg": vt.seg_p[basic.idx].tolist(),
            # rn's baseline is 0 as soon as *any* message arrived (a
            # piggyback of 0 is still a received index), -1 before.
            "has_recv": (vt.last_recv_at[basic.idx] >= 0).tolist(),
            "a_seg": clo.rarr_seg.tolist(),
            "a_row": clo.rarr_row.tolist(),
            "a_src": clo.rarr_src.tolist(),
            "seg_has_recv": (np.diff(recv.starts) > 0).tolist(),
        }
        vt.scratch["index_walk_static"] = ws

    codes = ws["codes"]
    b_seg = ws["b_seg"]
    has_recv = ws["has_recv"]
    a_seg = ws["a_seg"]
    a_row = ws["a_row"]
    a_src = ws["a_src"]

    sn_after: list = [0] * nb
    armed_l: list = [False] * nb
    rn_l: list = [0] * nb
    sn_seg = [0] * vt.n_segments
    rn_seg = [-1] * vt.n_segments
    jump_s: list = []
    jump_r: list = []
    jump_v: list = []
    n = len(codes)
    k = 0
    while k < n:
        c = codes[k]
        if c < 0:
            bi = -c - 1
            s = b_seg[bi]
            m = rn_seg[s]
            if m < 0 and has_recv[bi]:
                m = 0
            sn = sn_seg[s]
            if m >= sn:
                # rn caught up with sn: the basic opens a new index
                # (a prior jump receive left sn = rn).
                sn = m + 1
                armed_l[bi] = True
            elif not qbc:
                # BCS increments unconditionally; QBC's rn < sn case
                # keeps the index (the new checkpoint replaces its
                # predecessor).
                sn += 1
                armed_l[bi] = True
            sn_seg[s] = sn
            sn_after[bi] = sn
            rn_l[bi] = m
            k += 1
        else:
            # One receive's fresh arrivals are adjacent (same sort
            # key); the message's piggyback is the max over them --
            # already-seen bits are dominated by the running max.
            row = a_row[c]
            s = a_seg[c]
            v = sn_after[a_src[c]]
            k += 1
            while k < n:
                c = codes[k]
                if c < 0 or a_row[c] != row:
                    break
                v2 = sn_after[a_src[c]]
                if v2 > v:
                    v = v2
                k += 1
            if v > rn_seg[s]:
                rn_seg[s] = v
            if v > sn_seg[s]:
                sn_seg[s] = v
                jump_s.append(s)
                jump_r.append(row)
                jump_v.append(v)

    jump_seg = np.asarray(jump_s, dtype=np.int64)
    jump_row = np.asarray(jump_r, dtype=np.int64)
    jump_index = np.asarray(jump_v, dtype=np.int64)
    # Segment-major (jumps were discovered in global time order).
    order = np.lexsort((jump_row, jump_seg))
    jump_seg = jump_seg[order]
    jump_row = jump_row[order]
    jump_index = jump_index[order]

    sn_final = np.asarray(sn_seg, dtype=np.int64)
    rn_final = np.asarray(rn_seg, dtype=np.int64)
    # Baseline: any receive at all pins rn to at least 0.
    rn_final[(rn_final < 0) & np.asarray(ws["seg_has_recv"])] = 0
    return IndexTrajectory(
        sn_after_basic=np.asarray(sn_after, dtype=np.int64),
        armed=np.asarray(armed_l, dtype=bool),
        rn_at_basic=np.asarray(rn_l, dtype=np.int64),
        jump_seg=jump_seg,
        jump_row=jump_row,
        jump_index=jump_index,
        n_jump_seg=np.bincount(jump_seg, minlength=vt.n_segments),
        sn_final=sn_final,
        rn_final=rn_final,
    )


def nosend_classification(vt: VectorizedTrace, traj: IndexTrajectory):
    """Split the index-family jump receives into forced takes vs
    renames, per the no-send rule: a jump forces a new checkpoint only
    if the host sent since its last checkpoint-resetting event (basic
    trigger or earlier forced jump); otherwise the latest checkpoint is
    renamed in place.

    Returns a bool array parallel to ``traj.jump_row`` (True = forced
    take, False = rename).  The walk is O(jumps), and jumps are as
    rare as forced checkpoints.
    """
    import numpy as np

    pos = vt.recv.idx[traj.jump_row]
    send_pos = gather(vt.send.idx, vt.last_send_at[pos], -1)
    basic_pos = gather(vt.basic.idx, vt.last_basic_at[pos], -1)
    pos_l = pos.tolist()
    sp_l = send_pos.tolist()
    bp_l = basic_pos.tolist()
    seg_l = traj.jump_seg.tolist()
    forced = [False] * len(pos_l)
    last_forced: dict = {}
    for k in range(len(pos_l)):
        reset = bp_l[k]
        lf = last_forced.get(seg_l[k], -1)
        if lf > reset:
            reset = lf
        if sp_l[k] > reset:
            forced[k] = True
            last_forced[seg_l[k]] = pos_l[k]
    return np.asarray(forced, dtype=bool)
