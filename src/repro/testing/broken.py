"""Deliberately broken protocols: mutation tests for the conformance kit.

A verification kit that never fails is indistinguishable from one that
never checks.  Each class here seeds exactly one defect class a real
protocol (or a real refactoring bug) could exhibit, and the kit's own
test suite proves the matching battery flags it:

===============================  ==================================
fixture                          battery that must catch it
===============================  ==================================
:class:`OrphanLineProtocol`      ``consistency-oracle`` (and the
                                 orphan check inside
                                 ``audit-cleanliness``)
:class:`NonMonotoneIndexProtocol``audit-cleanliness``
                                 (index-monotonicity)
:class:`BogusRecoveryLineProtocol````recovery-line`` (the line cannot
                                 be materialised)
:class:`LyingCounterProtocol`    ``signature-stability``
===============================  ==================================

None of these is registered in the protocol registry -- they are
injected through the ``factories`` override of
:func:`repro.testing.conformance.run_battery` (the same hook the audit
exposes), so the registry's protocol universe stays clean.
:data:`BROKEN_FACTORIES` maps a stable name to each fixture.
"""

from __future__ import annotations

import itertools

from repro.protocols.bcs import BCSProtocol

__all__ = [
    "BROKEN_FACTORIES",
    "BogusRecoveryLineProtocol",
    "LyingCounterProtocol",
    "NonMonotoneIndexProtocol",
    "OrphanLineProtocol",
]


class OrphanLineProtocol(BCSProtocol):
    """A correct BCS run whose *claimed* recovery line is everyone's
    latest checkpoint -- the naive cut the paper warns against: a
    message sent after the sender's last checkpoint but consumed before
    the receiver's is orphaned by it."""

    name = "BROKEN-ORPHAN"

    def recovery_line_indices(self) -> dict[int, int]:
        return {host: self.last_index[host] for host in range(self.n_hosts)}


class NonMonotoneIndexProtocol(BCSProtocol):
    """Logs a second mobility checkpoint with index 0 once the run is
    under way, violating per-host index monotonicity (the bug a broken
    index-advance refactor would introduce)."""

    name = "BROKEN-MONOTONE"

    def on_cell_switch(self, host: int, now: float, new_cell: int) -> None:
        if self.sn[host] > 0:
            # Keep sn in sync with the bogus checkpoint so the *only*
            # defect is the decreasing index -- the mutation stays
            # minimal and must be caught by the monotonicity rule, not
            # a collateral counter mismatch.
            self.sn[host] = 0
            self.take(host, 0, "basic", now)
        else:
            super().on_cell_switch(host, now, new_cell)


class BogusRecoveryLineProtocol(BCSProtocol):
    """Claims a recovery line at indices no host ever checkpointed, so
    the line cannot be materialised at all."""

    name = "BROKEN-LINE"

    def recovery_line_indices(self) -> dict[int, int]:
        return {
            host: self.last_index[host] + 7 for host in range(self.n_hosts)
        }


class LyingCounterProtocol(BCSProtocol):
    """Reports a different counter signature every time it is asked --
    the determinism breach that would silently poison the sweep cache
    and every cross-engine comparison."""

    name = "BROKEN-COUNTERS"

    _calls = itertools.count(1)

    def counter_signature(self) -> dict:
        signature = super().counter_signature()
        signature["n_total"] += next(self._calls)
        return signature


#: Stable injection names -> broken fixture, for ``factories=`` overrides.
BROKEN_FACTORIES = {
    "BROKEN-ORPHAN": OrphanLineProtocol,
    "BROKEN-MONOTONE": NonMonotoneIndexProtocol,
    "BROKEN-LINE": BogusRecoveryLineProtocol,
    "BROKEN-COUNTERS": LyingCounterProtocol,
}
