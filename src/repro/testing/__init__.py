"""Public testing kit: conformance batteries and hypothesis strategies.

Importable by third-party protocol plugins so a distribution can prove
itself against the same batteries the in-tree protocols pass::

    from repro.testing import conformance_suite

    TestMyProtocol = conformance_suite("XBCS")

Requires the ``test`` extra (pytest + hypothesis); the core library
never imports this package.

* :mod:`repro.testing.conformance` -- the battery set, the pytest
  front end and the programmatic :func:`check_conformance` report.
* :mod:`repro.testing.strategies` -- shared hypothesis strategies for
  workloads and valid mobile traces.
* :mod:`repro.testing.broken` -- deliberately broken protocols that
  prove the kit catches what it claims to catch.
"""

from repro.testing.conformance import (
    BATTERIES,
    BatteryResult,
    BatterySkipped,
    ConformanceFailure,
    ConformanceReport,
    check_conformance,
    conformance_suite,
    default_config,
    run_battery,
)
from repro.testing.strategies import FIGURE_CORNERS, traces, workload_configs

__all__ = [
    "BATTERIES",
    "BatteryResult",
    "BatterySkipped",
    "ConformanceFailure",
    "ConformanceReport",
    "FIGURE_CORNERS",
    "check_conformance",
    "conformance_suite",
    "default_config",
    "run_battery",
    "traces",
    "workload_configs",
]
