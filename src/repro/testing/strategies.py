"""Shared hypothesis strategies for protocol and engine testing.

These used to live copy-pasted inside ``tests/core``; they are public
now so protocol plugins can drive the same property-based machinery the
in-tree suites use (see :mod:`repro.testing.conformance`):

* :func:`workload_configs` -- small but varied valid
  :class:`~repro.workload.config.WorkloadConfig` instances, the input
  of every engine-differential property test;
* :func:`traces` -- random *valid* mobile-computation traces built
  event by event (message causality, cell occupancy and connectivity
  all kept coherent), the input of the consistency-oracle properties;
* :data:`FIGURE_CORNERS` -- the deterministic parameter corners of the
  paper's figures (extreme cell-residence times crossed with the switch
  and heterogeneity regimes), for exhaustive non-random spot checks.

Both strategies are parametrizable so a suite can shrink or grow the
search space (`traces(max_ops=80)`, `workload_configs(max_hosts=6)`)
without re-deriving the validity bookkeeping.
"""

from __future__ import annotations

import itertools
from collections import defaultdict
from typing import Sequence

from hypothesis import strategies as st

from repro.core.trace import EventType, build_trace
from repro.workload.config import WorkloadConfig

__all__ = ["FIGURE_CORNERS", "traces", "workload_configs"]


@st.composite
def workload_configs(
    draw,
    *,
    min_hosts: int = 2,
    max_hosts: int = 4,
    sim_times: Sequence[float] = (30.0, 80.0, 150.0),
):
    """Small but varied valid workload configurations.

    The defaults keep single-run replay under a few milliseconds, so a
    differential property (reference vs fused vs vectorized) stays
    cheap at ``max_examples=30``.
    """
    return WorkloadConfig(
        n_hosts=draw(st.integers(min_hosts, max_hosts)),
        n_mss=draw(st.integers(2, 3)),
        p_send=draw(st.sampled_from([0.1, 0.4, 0.9])),
        t_switch=draw(st.sampled_from([20.0, 60.0, 200.0])),
        p_switch=draw(st.sampled_from([0.8, 1.0])),
        heterogeneity=draw(st.sampled_from([0.0, 0.3, 0.5])),
        sim_time=draw(st.sampled_from(list(sim_times))),
        seed=draw(st.integers(0, 2**16)),
    ).validate()


@st.composite
def traces(
    draw,
    max_ops: int = 40,
    *,
    min_hosts: int = 2,
    max_hosts: int = 4,
):
    """Random *valid* mobile-computation traces.

    Validity means: a message is received only after it was sent and
    only once, by its addressee; a disconnected host does nothing until
    it reconnects; cell switches go to a *different* cell.  These are
    the preconditions :func:`repro.core.trace.build_trace` checks, so
    every draw replays cleanly on every protocol.
    """
    n_hosts = draw(st.integers(min_hosts, max_hosts))
    n_mss = draw(st.integers(2, 3))
    n_ops = draw(st.integers(1, max_ops))
    connected = [True] * n_hosts
    cells = [h % n_mss for h in range(n_hosts)]
    pending: dict[int, list[tuple[int, int]]] = defaultdict(list)  # dst -> [(msg, src)]
    msg_ctr = itertools.count(1)
    events = []
    t = 0.0
    for _ in range(n_ops):
        actions = []
        for h in range(n_hosts):
            if connected[h]:
                actions.append(("send", h))
                actions.append(("switch", h))
                actions.append(("disconnect", h))
                if pending[h]:
                    actions.append(("receive", h))
            else:
                actions.append(("reconnect", h))
        kind, h = draw(st.sampled_from(actions))
        t += 1.0
        if kind == "send":
            dst = draw(st.sampled_from([x for x in range(n_hosts) if x != h]))
            mid = next(msg_ctr)
            pending[dst].append((mid, h))
            events.append((t, EventType.SEND, h, mid, dst))
        elif kind == "receive":
            mid, src = pending[h].pop(0)
            events.append((t, EventType.RECEIVE, h, mid, src))
        elif kind == "switch":
            new_cell = draw(
                st.sampled_from([c for c in range(n_mss) if c != cells[h]])
            )
            events.append((t, EventType.CELL_SWITCH, h, -1, cells[h], new_cell))
            cells[h] = new_cell
        elif kind == "disconnect":
            connected[h] = False
            events.append((t, EventType.DISCONNECT, h))
        else:  # reconnect
            connected[h] = True
            events.append((t, EventType.RECONNECT, h, -1, -1, cells[h]))
    return build_trace(n_hosts, n_mss, events)


#: The paper's figure corners: extreme cell-residence times crossed
#: with both switch regimes and the heterogeneity extremes, at the
#: figures' fixed P_s = 0.4.
FIGURE_CORNERS = tuple(
    WorkloadConfig(
        p_send=0.4,
        t_switch=t_switch,
        p_switch=p_switch,
        heterogeneity=heterogeneity,
        sim_time=400.0,
        seed=7,
    ).validate()
    for t_switch in (100.0, 10_000.0)
    for p_switch in (1.0, 0.8)
    for heterogeneity in (0.0, 0.5)
)
