"""Conformance kit: one line of pytest verifies a whole protocol.

Any protocol that joins the registry -- builtin, runtime-registered or
a plugin distribution (:mod:`repro.engine.plugins`) -- can be driven
through the same battery set the in-tree protocols are held to::

    # test_my_protocol.py
    from repro.testing import conformance_suite

    TestMyProtocol = conformance_suite("XBCS")

The generated class contains one parametrized test per battery plus a
hypothesis property test on random traces.  The batteries:

``registration``
    The name resolves through the capability-aware registry, its
    capability declaration is coherent, and a fresh instance starts
    with a sane counter signature and zero invariant violations.
``signature-stability``
    Two independent runs of the same specification produce identical
    counter signatures (replayable) or identical coordinated results
    (coordinated) -- the determinism every sweep, cache and audit
    feature rests on.
``engine-equivalence``
    Reference, fused and (where kernels exist) vectorized replay agree
    bit for bit: counters, full checkpoint trails and recovery lines.
``recovery-line``
    The protocol's on-the-fly recovery line *materialises*: every
    demanded (host, index) resolves to a checkpoint that was actually
    taken.  TP-style protocols are checked over every anchored line.
``consistency-oracle``
    The materialised line(s) admit no orphan message, and the direct
    orphan check agrees with the independent vector-clock criterion.
``audit-cleanliness``
    :func:`repro.obs.audit.audit_trace` reports zero violations for
    the protocol on the kit workload.

Each battery skips itself (:class:`BatterySkipped`) when the protocol
does not claim the capability it exercises -- a coordinated baseline
is not penalised for not being replayable -- and fails with a
:class:`ConformanceFailure` carrying the protocol, battery and detail
otherwise.  :func:`check_conformance` runs everything programmatically
and returns a :class:`ConformanceReport`.

The kit is a *consumer* of the execution engine: all runs go through
:func:`repro.engine.execute` (enforced by the import contracts), so a
protocol passing here passes on the exact production path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.core.consistency import (
    CausalOrder,
    annotate_replay,
    build_recovery_line,
    find_orphans,
    is_consistent,
    tp_anchored_line,
)
from repro.engine import (
    EngineError,
    ResolvedProtocol,
    RunSpec,
    execute,
    known_names,
    resolve_protocols,
)
from repro.protocols.base import CheckpointingProtocol
from repro.workload import WorkloadConfig, generate_trace

__all__ = [
    "BATTERIES",
    "BatterySkipped",
    "ConformanceFailure",
    "ConformanceReport",
    "check_conformance",
    "conformance_suite",
    "default_config",
    "run_battery",
]

#: name -> callable(n_hosts, n_mss) building a fresh protocol instance.
FactoryMap = Mapping[str, Callable[[int, int], CheckpointingProtocol]]

#: Counter-signature keys every protocol must report.
SIGNATURE_KEYS = frozenset(
    {
        "protocol",
        "n_basic",
        "n_forced",
        "n_initial",
        "n_replaced",
        "n_renamed",
        "n_total",
        "per_host_total",
        "last_index",
    }
)


class ConformanceFailure(AssertionError):
    """A protocol failed one conformance battery."""

    def __init__(self, protocol: str, battery: str, detail: str):
        self.protocol = protocol
        self.battery = battery
        self.detail = detail
        super().__init__(f"[{battery}] protocol {protocol!r}: {detail}")


class BatterySkipped(Exception):
    """The battery does not apply to this protocol's capabilities."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


def default_config() -> WorkloadConfig:
    """The kit's deterministic workload: small enough that the full
    battery set stays subsecond per protocol, busy enough (handoffs,
    disconnections, cross-cell traffic) to exercise every hook."""
    return WorkloadConfig(
        n_hosts=5, n_mss=2, t_switch=60.0, sim_time=300.0, seed=1998
    ).validate()


_TRACE_CACHE: dict[str, object] = {}


def _trace_for(config: WorkloadConfig):
    key = repr(config)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(config)
    return _TRACE_CACHE[key]


@dataclass
class _Context:
    """Everything one battery run needs."""

    name: str
    entry: ResolvedProtocol
    factories: Optional[FactoryMap]
    config: WorkloadConfig

    @property
    def trace(self):
        return _trace_for(self.config)

    def fail(self, battery: str, detail: str) -> "ConformanceFailure":
        return ConformanceFailure(self.name, battery, detail)

    def run(self, engine: str, **kw):
        spec = RunSpec(
            protocols=(self.name,),
            engine=engine,
            factories=self.factories,
            **kw,
        )
        return execute(spec).outcomes[0]

    def instance(self) -> CheckpointingProtocol:
        return self.entry.make(self.config.n_hosts, self.config.n_mss)


def _context(
    name: str,
    factories: Optional[FactoryMap],
    config: Optional[WorkloadConfig],
) -> _Context:
    try:
        (entry,) = resolve_protocols([name], factories=factories)
    except EngineError as exc:
        raise ConformanceFailure(name, "registration", str(exc)) from exc
    return _Context(
        name=name,
        entry=entry,
        factories=factories,
        config=config or default_config(),
    )


# ---------------------------------------------------------------------------
# line materialisation (shared by the recovery-line / oracle batteries)
# ---------------------------------------------------------------------------


def _materialized_lines(ctx: _Context, battery: str):
    """Replay the kit trace and materialise every recovery line the
    protocol promises: the global on-the-fly line, or (TP-style) one
    anchored line per host.  Raises :class:`BatterySkipped` when the
    protocol promises no line at all (e.g. the uncoordinated baseline,
    RDT-only protocols like FDAS)."""
    if not ctx.entry.capabilities.replayable:
        raise BatterySkipped(
            "coordinated baselines keep no replayable recovery line"
        )
    protocol = ctx.instance()
    run = annotate_replay(ctx.trace, protocol)
    try:
        line = build_recovery_line(run, protocol)
    except NotImplementedError:
        if not hasattr(protocol, "required_indices"):
            raise BatterySkipped(
                "declares no on-the-fly recovery line (nothing promised, "
                "nothing checked)"
            ) from None
        lines = []
        for anchor in range(ctx.trace.n_hosts):
            try:
                anchored = tp_anchored_line(run, protocol, anchor)
            except (ValueError, KeyError) as exc:
                raise ctx.fail(
                    battery,
                    f"anchored line of host {anchor} cannot be "
                    f"materialised: {exc}",
                ) from exc
            lines.append((f"anchored line of host {anchor}", anchored))
        return run, lines
    except ValueError as exc:
        raise ctx.fail(
            battery, f"recovery line cannot be materialised: {exc}"
        ) from exc
    return run, [("recovery line", line)]


# ---------------------------------------------------------------------------
# batteries
# ---------------------------------------------------------------------------


def _battery_registration(ctx: _Context) -> str:
    caps = ctx.entry.capabilities
    if caps.coordinated:
        if ctx.entry.scheme is None:
            raise ctx.fail(
                "registration", "coordinated entry carries no scheme"
            )
        return f"coordinated scheme {ctx.entry.scheme.value!r}"
    protocol = ctx.instance()
    signature = protocol.counter_signature()
    missing = SIGNATURE_KEYS - set(signature)
    if missing:
        raise ctx.fail(
            "registration",
            f"counter signature lacks keys {sorted(missing)}",
        )
    problems = protocol.invariant_violations()
    if problems:
        raise ctx.fail(
            "registration",
            f"fresh instance already violates invariants: {problems}",
        )
    return f"capabilities {caps}"


def _battery_signature_stability(ctx: _Context) -> str:
    caps = ctx.entry.capabilities
    if caps.coordinated:
        kw = dict(workload=ctx.config, snapshot_interval=60.0)
        first = ctx.run("online", **kw).coordinated
        second = ctx.run("online", **kw).coordinated
        if first != second:
            raise ctx.fail(
                "signature-stability",
                f"two identical online runs disagree: {first} != {second}",
            )
        return f"coordinated result stable ({first.n_total} checkpoints)"
    first = ctx.run("reference", trace=ctx.trace).protocol.counter_signature()
    second = ctx.run("reference", trace=ctx.trace).protocol.counter_signature()
    if first != second:
        diff = {
            key: (first.get(key), second.get(key))
            for key in set(first) | set(second)
            if first.get(key) != second.get(key)
        }
        raise ctx.fail(
            "signature-stability",
            f"two identical replays disagree on counters: {diff}",
        )
    return f"signature stable ({first['n_total']} checkpoints)"


def _trail(protocol: CheckpointingProtocol):
    return [
        (ck.host, ck.index, ck.reason, ck.time, ck.replaced, ck.metadata)
        for ck in protocol.checkpoints
    ]


def _line_indices(protocol: CheckpointingProtocol):
    try:
        return protocol.recovery_line_indices()
    except NotImplementedError:
        return None


def _battery_engine_equivalence(ctx: _Context) -> str:
    caps = ctx.entry.capabilities
    if not caps.replayable:
        raise BatterySkipped("not replayable; only the online engine applies")
    if not caps.fusable:
        raise BatterySkipped(
            "not fusable; the reference engine is the only replay path"
        )
    reference = ctx.run("reference", trace=ctx.trace).protocol
    others = [("fused", ctx.run("fused", trace=ctx.trace).protocol)]
    if caps.vectorizable:
        others.append(
            ("vectorized", ctx.run("vectorized", trace=ctx.trace).protocol)
        )
    for engine, protocol in others:
        if protocol.counter_signature() != reference.counter_signature():
            raise ctx.fail(
                "engine-equivalence",
                f"{engine} counters diverge from reference: "
                f"{protocol.counter_signature()} != "
                f"{reference.counter_signature()}",
            )
        if _trail(protocol) != _trail(reference):
            raise ctx.fail(
                "engine-equivalence",
                f"{engine} checkpoint trail diverges from reference",
            )
        if _line_indices(protocol) != _line_indices(reference):
            raise ctx.fail(
                "engine-equivalence",
                f"{engine} recovery line diverges from reference",
            )
    return "reference ≡ " + " ≡ ".join(engine for engine, _ in others)


def _battery_recovery_line(ctx: _Context) -> str:
    run, lines = _materialized_lines(ctx, "recovery-line")
    for label, line in lines:
        uncovered = set(range(ctx.trace.n_hosts)) - set(line)
        if uncovered:
            raise ctx.fail(
                "recovery-line",
                f"{label} leaves hosts {sorted(uncovered)} without a "
                "checkpoint",
            )
    return f"{len(lines)} line(s) materialised"


def _battery_consistency_oracle(ctx: _Context) -> str:
    run, lines = _materialized_lines(ctx, "consistency-oracle")
    order = CausalOrder(run)
    for label, line in lines:
        orphans = find_orphans(run, line)
        if orphans:
            m = orphans[0]
            raise ctx.fail(
                "consistency-oracle",
                f"{label} orphans {len(orphans)} message(s), e.g. msg "
                f"{m.msg_id} ({m.src}@{m.src_pos} -> {m.dst}@{m.dst_pos})",
            )
        if not (is_consistent(run, line) and order.line_is_consistent(line)):
            raise ctx.fail(
                "consistency-oracle",
                f"{label}: orphan and vector-clock criteria disagree",
            )
    return f"{len(lines)} line(s) orphan-free"


def _battery_audit_cleanliness(ctx: _Context) -> str:
    from repro.obs.audit import audit_trace, check_protocol_invariants

    caps = ctx.entry.capabilities
    if not caps.replayable:
        raise BatterySkipped(
            "coordinated baselines are driven online; nothing to audit"
        )
    factories = (
        ctx.factories if ctx.factories and ctx.name in ctx.factories else None
    )
    if not caps.fusable:
        # The full audit needs the fused pass; fall back to the
        # structural checks on a reference run.
        protocol = ctx.run("reference", trace=ctx.trace).protocol
        violations = check_protocol_invariants(protocol)
        scope = "structural audit (not fusable)"
    else:
        violations = audit_trace(
            ctx.trace, [ctx.name], factories=factories, seed=ctx.config.seed
        )
        scope = "full audit"
    if violations:
        shown = "; ".join(str(v) for v in violations[:3])
        raise ctx.fail(
            "audit-cleanliness",
            f"{len(violations)} violation(s): {shown}",
        )
    return f"{scope} clean"


#: Battery name -> implementation, in execution order.
_BATTERY_FUNCS: dict[str, Callable[[_Context], str]] = {
    "registration": _battery_registration,
    "signature-stability": _battery_signature_stability,
    "engine-equivalence": _battery_engine_equivalence,
    "recovery-line": _battery_recovery_line,
    "consistency-oracle": _battery_consistency_oracle,
    "audit-cleanliness": _battery_audit_cleanliness,
}

#: The battery names, in execution order.
BATTERIES: tuple[str, ...] = tuple(_BATTERY_FUNCS)


def run_battery(
    battery: str,
    protocol: str,
    *,
    factories: Optional[FactoryMap] = None,
    config: Optional[WorkloadConfig] = None,
) -> str:
    """Run one *battery* against *protocol*; returns a detail string.

    Raises :class:`ConformanceFailure` on breach, :class:`BatterySkipped`
    when the battery does not apply to the protocol's capabilities, and
    ``KeyError`` for an unknown battery name.
    """
    try:
        fn = _BATTERY_FUNCS[battery]
    except KeyError:
        raise KeyError(
            f"unknown battery {battery!r}; known: {list(BATTERIES)}"
        ) from None
    return fn(_context(protocol, factories, config))


@dataclass(frozen=True)
class BatteryResult:
    """Outcome of one battery on one protocol."""

    battery: str
    status: str  # "passed" | "skipped" | "failed"
    detail: str


@dataclass(frozen=True)
class ConformanceReport:
    """Every battery's outcome for one protocol."""

    protocol: str
    results: tuple[BatteryResult, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        """True iff no battery failed (skips do not count against)."""
        return all(r.status != "failed" for r in self.results)

    @property
    def failures(self) -> tuple[BatteryResult, ...]:
        return tuple(r for r in self.results if r.status == "failed")

    def summary(self) -> str:
        lines = [f"conformance {self.protocol}:"]
        lines += [
            f"  {r.battery:<22} {r.status:<8} {r.detail}"
            for r in self.results
        ]
        return "\n".join(lines)


def check_conformance(
    protocol: str,
    *,
    factories: Optional[FactoryMap] = None,
    config: Optional[WorkloadConfig] = None,
) -> ConformanceReport:
    """Run every battery against *protocol*, collecting the outcomes
    (nothing raises; inspect ``report.ok`` / ``report.failures``)."""
    results = []
    for battery in BATTERIES:
        try:
            detail = run_battery(
                battery, protocol, factories=factories, config=config
            )
        except ConformanceFailure as exc:
            results.append(BatteryResult(battery, "failed", exc.detail))
        except BatterySkipped as exc:
            results.append(BatteryResult(battery, "skipped", exc.reason))
        else:
            results.append(BatteryResult(battery, "passed", detail))
    return ConformanceReport(protocol=protocol, results=tuple(results))


# ---------------------------------------------------------------------------
# pytest front end
# ---------------------------------------------------------------------------


def conformance_suite(
    *names: str,
    factories: Optional[FactoryMap] = None,
    config: Optional[WorkloadConfig] = None,
    max_examples: int = 12,
):
    """Build a pytest test class covering *names* (default: every
    registered protocol).

    Assign the result to a module-level ``Test*`` attribute so pytest
    collects it::

        TestConformance = conformance_suite("XBCS", "FDAS")

    The class holds one test per battery, parametrized over the
    protocols, plus one hypothesis property test driving each
    replayable protocol over random traces
    (:func:`repro.testing.strategies.traces`) and asserting invariants
    and line consistency hold on every draw.
    """
    import pytest
    from hypothesis import given, settings

    from repro.testing.strategies import traces

    selected = tuple(names) if names else tuple(known_names())
    if factories:
        selected = tuple(
            dict.fromkeys(list(selected) + sorted(factories))
        )
    params = pytest.mark.parametrize("protocol", list(selected))

    namespace = {
        "__doc__": f"Generated conformance suite for {', '.join(selected)}.",
        "PROTOCOLS": selected,
    }

    def _make_test(battery: str):
        def test(self, protocol, _battery=battery):
            try:
                run_battery(
                    _battery, protocol, factories=factories, config=config
                )
            except BatterySkipped as exc:
                pytest.skip(f"{protocol}: {exc.reason}")

        test.__name__ = "test_" + battery.replace("-", "_")
        test.__doc__ = f"Battery {battery!r} (see repro.testing.conformance)."
        return params(test)

    for battery in BATTERIES:
        test = _make_test(battery)
        namespace[test.__name__] = test

    @params
    @settings(max_examples=max_examples, deadline=None)
    @given(trace=traces(max_ops=30))
    def test_property_random_traces_stay_sound(self, protocol, trace):
        """Invariants and line consistency hold on random traces, not
        just the kit workload."""
        try:
            (entry,) = resolve_protocols([protocol], factories=factories)
        except EngineError as exc:
            raise ConformanceFailure(protocol, "property", str(exc)) from exc
        if not entry.capabilities.replayable:
            pytest.skip(f"{protocol}: not replayable")
        instance = entry.make(trace.n_hosts, trace.n_mss)
        run = annotate_replay(trace, instance)
        problems = instance.invariant_violations()
        assert not problems, f"{protocol}: {problems}"
        try:
            line = build_recovery_line(run, instance)
        except NotImplementedError:
            return  # nothing promised, nothing checked
        assert is_consistent(run, line), f"{protocol}: line has orphans"

    namespace["test_property_random_traces_stay_sound"] = (
        test_property_random_traces_stay_sound
    )

    return type("ConformanceSuite", (), namespace)
