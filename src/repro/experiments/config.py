"""Sweep configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.workload.config import WorkloadConfig
from repro.workload.scenarios import T_SWITCH_SWEEP

#: Protocol names evaluated by default (the paper's three).
DEFAULT_PROTOCOLS = ("TP", "BCS", "QBC")


@dataclass(slots=True)
class SweepConfig:
    """One ``N_tot`` vs ``T_switch`` sweep (= one paper figure).

    Parameters
    ----------
    base:
        Workload parameters shared by every point (``t_switch`` and
        ``seed`` are overridden per point/run).
    t_switch_values:
        The x-axis (paper: log-spaced 100..10000).
    protocols:
        Names from :data:`repro.protocols.base.registry`.
    seeds:
        One run per seed per point; results are averaged and the
        within-4% agreement is checked.
    workers:
        Process-pool width for the sweep; 0/1 = run serially.  The pool
        fans out over (point, seed) tasks, so it scales past the number
        of points.
    use_cache:
        Serve traces from the content-addressed cache
        (:mod:`repro.workload.cache`) instead of regenerating them.
    cache_dir:
        Directory of the persistent on-disk trace store; None = memory
        tier only (or the ``REPRO_TRACE_CACHE_DIR`` environment
        variable when set).
    audit:
        Run the invariant audit (:mod:`repro.obs.audit`) on every
        (point, seed) task: reference-vs-fused counter equivalence,
        counter/log consistency, index monotonicity and the
        recovery-line orphan oracle.  Violations are collected into
        :attr:`~repro.experiments.runner.SweepResult.violations`.
        Costs roughly one extra reference replay plus one annotated
        replay per protocol per task; off by default.
    telemetry_path:
        When set, the sweep's per-task telemetry records
        (:class:`repro.obs.telemetry.TaskTelemetry`) are written there
        as JSONL (with a trailing summary line) after the sweep.
        Telemetry is *collected* regardless; this only controls file
        emission.
    """

    base: WorkloadConfig = field(default_factory=WorkloadConfig)
    t_switch_values: Sequence[float] = T_SWITCH_SWEEP
    protocols: Sequence[str] = DEFAULT_PROTOCOLS
    seeds: Sequence[int] = (0, 1, 2)
    workers: int = 0
    use_cache: bool = True
    cache_dir: Optional[str] = None
    audit: bool = False
    telemetry_path: Optional[str] = None

    def validate(self) -> "SweepConfig":
        """Check the sweep parameters; returns self (chainable)."""
        from repro.protocols.base import registry

        self.base.validate()
        if not self.t_switch_values:
            raise ValueError("need at least one t_switch value")
        if any(t <= 0 for t in self.t_switch_values):
            raise ValueError("t_switch values must be positive")
        unknown = [p for p in self.protocols if p not in registry]
        if unknown:
            raise ValueError(
                f"unknown protocols {unknown}; known: {sorted(registry)}"
            )
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        return self
