"""Sweep configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.workload.config import WorkloadConfig
from repro.workload.scenarios import T_SWITCH_SWEEP

#: Protocol names evaluated by default (the paper's three).
DEFAULT_PROTOCOLS = ("TP", "BCS", "QBC")


@dataclass(slots=True)
class SweepConfig:
    """One ``N_tot`` vs ``T_switch`` sweep (= one paper figure).

    Parameters
    ----------
    base:
        Workload parameters shared by every point (``t_switch`` and
        ``seed`` are overridden per point/run).
    t_switch_values:
        The x-axis (paper: log-spaced 100..10000).
    protocols:
        Names resolved through the engine registry
        (:func:`repro.engine.resolve_protocols`); sweeps run on a
        replay engine, so every name must satisfy the chosen
        ``engine``'s capability gate.
    engine:
        Replay engine per (point, seed) task: ``"fused"`` (default),
        ``"vectorized"`` (batch kernels; every protocol must declare
        ``vectorizable``) or ``"auto"`` (vectorized when possible,
        fused otherwise).  Results are bit-identical across the three;
        this only trades execution strategy.
    workload:
        Workload-model spec ``NAME[:key=value,...]`` (e.g.
        ``"zipf:alpha=1.1"``) resolved through the workload registry
        (:mod:`repro.workload.registry`).  :meth:`validate` folds the
        parsed name and coerced parameters into ``base`` --
        ``base.workload`` / ``base.workload_params`` -- so the model
        rides every execution path (serial, pool, sharded wire)
        identically.  ``None`` (default) leaves ``base`` alone (the
        paper model unless ``base`` already names another).  Unknown
        names raise
        :class:`~repro.workload.registry.UnknownWorkloadError` with
        did-you-mean suggestions, like unknown protocols.
    seeds:
        One run per seed per point; results are averaged and the
        within-4% agreement is checked.
    workers:
        Process-pool width for the sweep; 0/1 = run serially.  The pool
        fans out over (point, seed) tasks, so it scales past the number
        of points.
    use_cache:
        Serve traces from the content-addressed cache
        (:mod:`repro.workload.cache`) instead of regenerating them.
    cache_dir:
        Directory of the persistent on-disk trace store; None = memory
        tier only (or the ``REPRO_TRACE_CACHE_DIR`` environment
        variable when set).
    audit:
        Run the invariant audit (:mod:`repro.obs.audit`) on every
        (point, seed) task: reference-vs-fused counter equivalence,
        counter/log consistency, index monotonicity and the
        recovery-line orphan oracle.  Violations are collected into
        :attr:`~repro.experiments.runner.SweepResult.violations`.
        Costs roughly one extra reference replay plus one annotated
        replay per protocol per task; off by default.
    telemetry_path:
        When set, the sweep's per-task telemetry records
        (:class:`repro.obs.telemetry.TaskTelemetry`) are written there
        as JSONL (with a trailing summary line) after the sweep.
        Telemetry is *collected* regardless; this only controls file
        emission.
    task_timeout_s:
        Per-(point, seed) task deadline in seconds; a task that
        exceeds it is aborted (worker-side alarm, plus a hung-worker
        watchdog on pooled runs) and retried.  None disables the
        deadline.
    max_task_retries:
        How many times a failed task (timeout, worker crash, corrupt
        cache, protocol error) is re-dispatched before being
        quarantined.  A quarantined task becomes an explicit hole in
        the :class:`~repro.experiments.runner.SweepResult` (recorded in
        ``SweepResult.errors``) instead of aborting the whole grid.
    retry_backoff_s:
        Base delay before a retry; attempt ``k`` waits
        ``retry_backoff_s * 2**(k-1)`` seconds, scaled by up to
        ``retry_jitter`` of random jitter so retries of many tasks
        don't stampede.
    retry_jitter:
        Relative jitter (0..1) applied on top of the exponential
        backoff.
    journal_path:
        Append-only JSONL ledger of completed tasks (fsynced per
        entry).  A sweep that crashes or is interrupted keeps every
        finished (point, seed) cell on disk for resumption.
    resume_from:
        Path of a journal written by an earlier run of *the same*
        sweep; completed cells found there (verified against this
        config's hash) are loaded instead of re-executed, so only
        missing tasks run.  Usually the same path as ``journal_path``.
    progress:
        Live status line (done/total, rate, ETA, cache hits, retries)
        on stderr while the sweep runs.  ``None`` (default) defers to
        the ``REPRO_PROGRESS`` environment variable, else to whether
        stderr is a TTY; True/False force it.  Display-only: results
        are identical either way.
    heartbeat_path:
        When set, the sweep appends one ``{"kind": "heartbeat", ...}``
        JSONL record there every few seconds -- the machine-readable
        twin of the progress line (consumed by ``repro tail``).
    trace_spans:
        Attach a :class:`~repro.engine.TimingObserver` to every task so
        its engine phases (trace acquisition, fused pass, observers)
        are recorded as spans riding the task's telemetry record.
    trace_path:
        When set, the spans of every task are merged and written there
        as Chrome trace-event JSON (loadable in Perfetto /
        ``chrome://tracing``) after the sweep.  Implies
        ``trace_spans``.
    stream_path:
        When set, every task appends one JSONL line per protocol
        outcome (plus one per run) there as it completes, via
        :class:`~repro.engine.StreamObserver` -- a live feed of results
        where telemetry/journal files land only at task completion.
    shards:
        Number of shard *worker processes* the sharded dispatch service
        (:mod:`repro.experiments.sharded`) spawns for this sweep.
        ``0`` (default) keeps the classic in-process pool (or serial)
        path; any positive value routes execution through the
        coordinator: the (point, seed) grid is partitioned into shard
        leases dispatched over a serialized connection boundary, with
        heartbeat liveness, lease revocation and reassignment on
        worker loss.  Results are value-identical to the in-process
        paths.
    shard_listen:
        ``"host:port"`` the coordinator listens on for *external*
        shard workers (``repro shard-worker``), in addition to any
        locally spawned ``shards``.  ``None`` (default) binds an
        ephemeral loopback port reachable only by the spawned workers.
        Setting it (with ``shards=0`` allowed) turns the sweep into a
        service other machines' workers can join; the connection is
        authenticated with the ``REPRO_SHARD_AUTHKEY`` hex key.
    shard_size:
        Cells per shard lease.  ``None`` (default) balances the grid
        at roughly four leases per worker so reassignment after a
        worker loss stays cheap.
    shard_heartbeat_s:
        Interval at which a shard worker pumps heartbeat frames to the
        coordinator.
    shard_lease_timeout_s:
        Liveness deadline: a leased worker silent for this long has
        its lease revoked and its incomplete cells reassigned (as
        ``worker-lost`` retries).  Must exceed ``shard_heartbeat_s``.
    run_id:
        Label stamped into fleet-aggregated metric series and span
        tags (``run_id="..."``) so several sweeps can share one
        Prometheus/OTLP sink.  ``None`` with the fleet plane enabled
        derives ``sweep-<config-hash>``; ``None`` with the plane off
        leaves every series exactly as before.
    obs_fleet:
        Enable the fleet observability plane
        (:mod:`repro.obs.fleet`): shard workers ship metric deltas and
        spans back to the coordinator, which merges them into one
        ``worker_id``-labelled registry with clock-skew-aligned spans.
        Implied by ``prom_path`` / ``otlp_path``.  Observability only:
        results are bit-identical with the plane on or off.
    prom_path:
        Prometheus textfile target for the merged fleet registry,
        rewritten atomically every ``obs_refresh_s`` and once more at
        sweep end (point a node-exporter textfile collector at it).
    prom_gateway:
        Push-gateway base URL (``http://host:9091``); the merged
        registry is PUT to ``/metrics/job/<run_id>`` on the same
        refresh cadence.  Push failures are counted, never raised.
    otlp_path:
        OTLP-JSON destination for the merged metrics *and* the
        skew-aligned spans, written once at sweep end: a file path, or
        an ``http(s)://`` endpoint to POST to.
    obs_refresh_s:
        Prometheus textfile / push refresh interval, seconds.
    adaptive_shard_size:
        Let the coordinator size each lease from observed per-cell
        wall time (:class:`repro.obs.fleet.AdaptiveShardSizer`)
        instead of the static ``shard_size`` -- scheduling fed by the
        observability plane.  Scheduling only: cell *results* are
        unaffected.
    """

    base: WorkloadConfig = field(default_factory=WorkloadConfig)
    t_switch_values: Sequence[float] = T_SWITCH_SWEEP
    protocols: Sequence[str] = DEFAULT_PROTOCOLS
    engine: str = "fused"
    workload: Optional[str] = None
    seeds: Sequence[int] = (0, 1, 2)
    workers: int = 0
    use_cache: bool = True
    cache_dir: Optional[str] = None
    audit: bool = False
    telemetry_path: Optional[str] = None
    task_timeout_s: Optional[float] = None
    max_task_retries: int = 2
    retry_backoff_s: float = 0.05
    retry_jitter: float = 0.1
    journal_path: Optional[str] = None
    resume_from: Optional[str] = None
    progress: Optional[bool] = None
    heartbeat_path: Optional[str] = None
    trace_spans: bool = False
    trace_path: Optional[str] = None
    stream_path: Optional[str] = None
    shards: int = 0
    shard_listen: Optional[str] = None
    shard_size: Optional[int] = None
    shard_heartbeat_s: float = 1.0
    shard_lease_timeout_s: float = 10.0
    run_id: Optional[str] = None
    obs_fleet: bool = False
    prom_path: Optional[str] = None
    prom_gateway: Optional[str] = None
    otlp_path: Optional[str] = None
    obs_refresh_s: float = 5.0
    adaptive_shard_size: bool = False

    @property
    def fleet_enabled(self) -> bool:
        """Whether any knob turns the fleet observability plane on."""
        return bool(
            self.obs_fleet
            or self.prom_path
            or self.prom_gateway
            or self.otlp_path
        )

    def validate(self) -> "SweepConfig":
        """Check the sweep parameters; returns self (chainable).

        Protocol names resolve through the engine registry
        (:func:`repro.engine.resolve_protocols`), so an unknown name
        raises the same :class:`~repro.engine.errors.UnknownProtocolError`
        (and a coordinated baseline the same
        :class:`~repro.engine.errors.CapabilityError`) as the CLI and
        the plan layer -- all are ``ValueError`` subclasses, so older
        callers keep working.
        """
        from repro.engine import resolve_protocols

        if self.workload is not None:
            from repro.workload.registry import resolve_workload_spec

            name, params = resolve_workload_spec(self.workload)
            if (name, params) != (self.base.workload,
                                  self.base.workload_params):
                # Fold the spec into the base config once (idempotent:
                # re-validation sees the values already applied), so
                # the journal hash, the task grid and the sharded wire
                # all carry the resolved model.
                self.base = self.base.with_(
                    workload=name, workload_params=params
                )
        self.base.validate()
        if not self.t_switch_values:
            raise ValueError("need at least one t_switch value")
        if any(t <= 0 for t in self.t_switch_values):
            raise ValueError("t_switch values must be positive")
        # Sweeps run on a replay engine; require its gate up front so a
        # bad protocol/engine pairing fails here, not mid-grid.
        if self.engine not in ("auto", "fused", "vectorized"):
            raise ValueError(
                f"sweep engine must be 'auto', 'fused' or 'vectorized', "
                f"got {self.engine!r}"
            )
        resolve_protocols(
            self.protocols,
            require="vectorizable" if self.engine == "vectorized" else "fusable",
        )
        if not self.seeds:
            raise ValueError("need at least one seed")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ValueError("task_timeout_s must be positive (or None)")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if not 0 <= self.retry_jitter <= 1:
            raise ValueError("retry_jitter must be in [0, 1]")
        if self.shards < 0:
            raise ValueError("shards must be >= 0")
        if self.shard_listen is not None:
            from repro.experiments.sharded import parse_address

            parse_address(self.shard_listen)  # raises ValueError if bad
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError("shard_size must be >= 1 (or None)")
        if self.shard_heartbeat_s <= 0:
            raise ValueError("shard_heartbeat_s must be positive")
        if self.shard_lease_timeout_s <= self.shard_heartbeat_s:
            raise ValueError(
                "shard_lease_timeout_s must exceed shard_heartbeat_s "
                "(a worker must get several heartbeats per deadline)"
            )
        if self.obs_refresh_s <= 0:
            raise ValueError("obs_refresh_s must be positive")
        if self.prom_gateway is not None and not str(
            self.prom_gateway
        ).startswith(("http://", "https://")):
            raise ValueError(
                "prom_gateway must be an http(s):// push-gateway URL"
            )
        return self
