"""The paper's six figures as runnable sweep definitions.

Every figure plots ``N_tot`` (total checkpoints over the run) against
the mean cell-residence time ``T_switch`` of the slowest hosts, for TP,
BCS and QBC, with ``P_s = 0.4``:

====== ========== =====
figure  P_switch    H
====== ========== =====
1        1.0        0%
2        0.8        0%
3        1.0       50%
4        0.8       50%
5        1.0       30%
6        0.8       30%
====== ========== =====
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.config import DEFAULT_PROTOCOLS, SweepConfig
from repro.experiments.runner import SweepResult, run_sweep
from repro.workload.config import WorkloadConfig
from repro.workload.scenarios import T_SWITCH_SWEEP

#: figure -> (p_switch, heterogeneity)
FIGURE_PARAMS: dict[int, tuple[float, float]] = {
    1: (1.0, 0.0),
    2: (0.8, 0.0),
    3: (1.0, 0.5),
    4: (0.8, 0.5),
    5: (1.0, 0.3),
    6: (0.8, 0.3),
}


def figure_sweep_config(
    figure: int,
    sim_time: float,
    seeds: Sequence[int] = (0, 1, 2),
    t_switch_values: Sequence[float] = T_SWITCH_SWEEP,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    engine: str = "fused",
    workload: Optional[str] = None,
    workers: int = 0,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    audit: bool = False,
    telemetry_path: Optional[str] = None,
    task_timeout_s: Optional[float] = None,
    max_task_retries: int = 2,
    journal_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    progress: Optional[bool] = None,
    heartbeat_path: Optional[str] = None,
    trace_spans: bool = False,
    trace_path: Optional[str] = None,
    stream_path: Optional[str] = None,
    shards: int = 0,
    shard_listen: Optional[str] = None,
    shard_size: Optional[int] = None,
    run_id: Optional[str] = None,
    prom_path: Optional[str] = None,
    prom_gateway: Optional[str] = None,
    otlp_path: Optional[str] = None,
    obs_refresh_s: float = 5.0,
    adaptive_shard_size: bool = False,
) -> SweepConfig:
    """Sweep configuration reproducing one paper figure.

    ``sim_time`` is explicit because the paper-scale horizon (1e5) takes
    minutes per sweep in pure Python; benches use a shorter horizon and
    EXPERIMENTS.md records which was used where.

    ``workload`` swaps the figure's traffic/mobility model for a
    registered one (``NAME[:key=value,...]``, e.g. ``"zipf:alpha=1.1"``)
    while keeping the figure's ``P_switch`` / ``H`` parameters -- the
    sensitivity ablation the registry exists for.
    """
    if figure not in FIGURE_PARAMS:
        raise ValueError(f"the paper has figures 1..6, got {figure}")
    p_switch, heterogeneity = FIGURE_PARAMS[figure]
    base = WorkloadConfig(
        p_send=0.4,
        p_switch=p_switch,
        heterogeneity=heterogeneity,
        sim_time=sim_time,
    )
    return SweepConfig(
        base=base,
        t_switch_values=tuple(t_switch_values),
        protocols=tuple(protocols),
        engine=engine,
        workload=workload,
        seeds=tuple(seeds),
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        audit=audit,
        telemetry_path=telemetry_path,
        task_timeout_s=task_timeout_s,
        max_task_retries=max_task_retries,
        journal_path=journal_path,
        resume_from=resume_from,
        progress=progress,
        heartbeat_path=heartbeat_path,
        trace_spans=trace_spans,
        trace_path=trace_path,
        stream_path=stream_path,
        shards=shards,
        shard_listen=shard_listen,
        shard_size=shard_size,
        run_id=run_id,
        prom_path=prom_path,
        prom_gateway=prom_gateway,
        otlp_path=otlp_path,
        obs_refresh_s=obs_refresh_s,
        adaptive_shard_size=adaptive_shard_size,
    ).validate()


def run_figure(
    figure: int,
    sim_time: float = 20_000.0,
    seeds: Sequence[int] = (0, 1, 2),
    t_switch_values: Optional[Sequence[float]] = None,
    engine: str = "fused",
    workload: Optional[str] = None,
    workers: int = 0,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
    audit: bool = False,
    telemetry_path: Optional[str] = None,
    task_timeout_s: Optional[float] = None,
    max_task_retries: int = 2,
    journal_path: Optional[str] = None,
    resume_from: Optional[str] = None,
    progress: Optional[bool] = None,
    heartbeat_path: Optional[str] = None,
    trace_spans: bool = False,
    trace_path: Optional[str] = None,
    stream_path: Optional[str] = None,
    shards: int = 0,
    shard_listen: Optional[str] = None,
    shard_size: Optional[int] = None,
    run_id: Optional[str] = None,
    prom_path: Optional[str] = None,
    prom_gateway: Optional[str] = None,
    otlp_path: Optional[str] = None,
    obs_refresh_s: float = 5.0,
    adaptive_shard_size: bool = False,
) -> SweepResult:
    """Run one paper figure end to end and return the sweep result.

    ``audit=True`` arms the per-task invariant audit (violations land
    on the result); ``telemetry_path`` writes the run telemetry JSONL.
    ``journal_path`` / ``resume_from`` make the sweep crash-safe and
    resumable (see docs/resilience.md).  ``progress`` /
    ``heartbeat_path`` / ``trace_spans`` / ``trace_path`` /
    ``stream_path`` are the observability taps (see
    docs/observability.md).  ``shards`` / ``shard_listen`` route the
    grid through the fault-tolerant sharded dispatch service
    (:mod:`repro.experiments.sharded`; see docs/resilience.md).
    ``prom_path`` / ``prom_gateway`` / ``otlp_path`` enable the fleet
    observability plane (merged cross-process metrics + skew-aligned
    spans, see docs/observability.md); ``adaptive_shard_size`` sizes
    shard leases from observed per-cell wall time.
    """
    cfg = figure_sweep_config(
        figure,
        sim_time=sim_time,
        seeds=seeds,
        t_switch_values=tuple(t_switch_values or T_SWITCH_SWEEP),
        engine=engine,
        workload=workload,
        workers=workers,
        use_cache=use_cache,
        cache_dir=cache_dir,
        audit=audit,
        telemetry_path=telemetry_path,
        task_timeout_s=task_timeout_s,
        max_task_retries=max_task_retries,
        journal_path=journal_path,
        resume_from=resume_from,
        progress=progress,
        heartbeat_path=heartbeat_path,
        trace_spans=trace_spans,
        trace_path=trace_path,
        stream_path=stream_path,
        shards=shards,
        shard_listen=shard_listen,
        shard_size=shard_size,
        run_id=run_id,
        prom_path=prom_path,
        prom_gateway=prom_gateway,
        otlp_path=otlp_path,
        obs_refresh_s=obs_refresh_s,
        adaptive_shard_size=adaptive_shard_size,
    )
    return run_sweep(cfg)
