"""Fault-tolerant, resumable sweep execution.

The sweep engine runs large (point, seed) Monte-Carlo grids on a
persistent process pool; this module is its crash-and-recover layer --
the same discipline the paper's checkpointing protocols give mobile
hosts, applied to our own long-running experiments:

* **Per-task supervision** -- every (t_switch, seed) task runs under a
  configurable deadline (worker-side alarm) and is retried with
  exponential backoff + jitter on failure.  Failures carry a structured
  taxonomy (:class:`TaskError`: ``timeout`` / ``worker-crash`` /
  ``cache-corrupt`` / ``protocol-error``), and a task that keeps
  failing is *quarantined*: it becomes an explicit hole in the
  :class:`~repro.experiments.runner.SweepResult` instead of aborting
  the grid.
* **Pool self-healing** -- a worker crash breaks a
  ``ProcessPoolExecutor``; the supervisor detects it, rebuilds the
  pool, and re-dispatches every task that was in flight.  A hung-worker
  watchdog kills workers whose task blows far past its deadline (the
  alarm cannot fire inside C code), which routes them through the same
  healing path; the watchdog clock starts when a task begins
  *executing*, not when it is submitted, and in-flight siblings lost
  to the kill are re-dispatched without spending a retry.
* **Sweep journal** -- an append-only JSONL ledger
  (:class:`SweepJournal`) of completed task results, fsynced per entry
  and created via tmp+rename, keyed by a hash of the sweep's
  result-determining configuration.  ``SweepConfig.resume_from`` loads
  a journal back and re-runs only the missing (point, seed) cells.
* **Graceful draining** -- SIGINT/SIGTERM stop dispatch, let the
  journal keep everything already finished, and hand back a partial
  result flagged ``interrupted`` (a second SIGINT force-quits).

Because every task is a pure function of its config, a sweep that
crashed, hung, lost workers or was interrupted still converges to a
result *value-identical* to a fault-free run once completed or resumed
-- the chaos tests (``tests/experiments/test_chaos.py``) assert exactly
that.
"""

from __future__ import annotations

import errno
import hashlib
import heapq
import json
import os
import random
import signal
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import asdict, dataclass, field
from typing import Any, Optional, Sequence

#: The TaskError.kind vocabulary.  ``worker-lost`` is the sharded
#: dispatch variant of ``worker-crash``: a whole shard worker vanished
#: (process death, severed connection or missed heartbeat deadline)
#: and the cell was reassigned -- see :mod:`repro.experiments.sharded`.
TASK_ERROR_KINDS = (
    "timeout",
    "worker-crash",
    "cache-corrupt",
    "protocol-error",
    "worker-lost",
)

#: Journal format version (header field; bumped on breaking changes).
JOURNAL_VERSION = 1

#: Environment variable naming a directory of chaos-injection flags
#: (test-only; see :func:`_maybe_chaos`).
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

#: Supervisor poll interval while tasks are in flight, seconds.
_TICK_S = 0.05

#: Extra slack the hung-worker watchdog grants beyond the task deadline
#: before it starts killing workers (the worker-side alarm should have
#: fired long before this).
_WATCHDOG_GRACE_S = 5.0


class TaskTimeout(Exception):
    """Raised inside a worker when a task blows its deadline."""


class JournalConfigMismatch(ValueError):
    """A journal's config hash does not match the resuming sweep."""


class JournalLocked(RuntimeError):
    """Another live process (or coordinator) holds this journal open.

    The journal is the sweep's exactly-once ledger: two concurrent
    writers would interleave appends and corrupt resume semantics, so
    :meth:`SweepJournal.open` takes an advisory ``flock`` and refuses
    to share.  Wait for the other sweep to finish, or point
    ``--journal`` / ``--resume`` at a different path.
    """


@dataclass(slots=True)
class TaskError:
    """One quarantined (or still-retrying) sweep task failure."""

    #: One of :data:`TASK_ERROR_KINDS`.
    kind: str
    t_switch: float
    seed: int
    #: Attempts made when the error was recorded (1 = first try).
    attempts: int = 1
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"{self.kind}(t_switch={self.t_switch:g} seed={self.seed} "
            f"attempts={self.attempts}): {self.detail or 'no detail'}"
        )

    def as_json_dict(self) -> dict[str, Any]:
        """Plain-JSON form (journal / telemetry emission)."""
        return asdict(self)


@dataclass(slots=True)
class ExecutionReport:
    """What :func:`execute` hands back to the runner."""

    #: Task outcomes aligned with the grid's task order; ``None`` marks
    #: a hole (quarantined task, or not reached before an interrupt).
    outcomes: list
    #: Quarantined tasks (terminal failures), dispatch order.
    errors: list[TaskError] = field(default_factory=list)
    #: Tasks served from the resume journal instead of re-executed.
    resumed: int = 0
    #: Re-dispatches that happened across the sweep.
    retries: int = 0
    #: True when SIGINT/SIGTERM drained the sweep early.
    interrupted: bool = False


# ----------------------------------------------------------------------
# config hashing
# ----------------------------------------------------------------------
def sweep_config_hash(config) -> str:
    """Hash of the sweep fields that determine *result values*.

    Covers the workload config (via the trace cache's canonical
    :func:`~repro.workload.cache.config_key`), the grid, the protocol
    set and the audit switch.  Execution knobs (workers, cache, journal
    paths, retry policy) are deliberately excluded: they change how a
    sweep runs, never what it computes, so a journal stays resumable
    across them.
    """
    from repro.workload.cache import config_key

    payload = {
        "base": config_key(config.base),
        "t_switch_values": [repr(float(t)) for t in config.t_switch_values],
        "protocols": list(config.protocols),
        "seeds": [int(s) for s in config.seeds],
        "audit": bool(config.audit),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# the sweep journal
# ----------------------------------------------------------------------
class SweepJournal:
    """Append-only JSONL ledger of completed sweep tasks.

    Line 1 is a header ``{"kind": "header", "version": ...,
    "config_hash": ...}``; every completed task appends one
    ``{"kind": "task", ...}`` line carrying its runs, telemetry and
    audit violations.  The file is *created* atomically (header written
    to a tmp file, fsynced, renamed into place) and every append is
    flushed and fsynced, so a crash loses at most the line being
    written -- and the loader ignores a torn trailing line.
    """

    def __init__(self, path, config_hash: str):
        self.path = os.fspath(path)
        self.config_hash = config_hash
        self._fh = None

    # -- creation / opening -------------------------------------------
    def open(self) -> "SweepJournal":
        """Create the journal (atomic) or re-open a matching one."""
        if os.path.exists(self.path):
            header = self._read_header(self.path)
            if header.get("config_hash") != self.config_hash:
                raise JournalConfigMismatch(
                    f"journal {self.path} was written for config hash "
                    f"{header.get('config_hash')!r}, not "
                    f"{self.config_hash!r}; refusing to append"
                )
        else:
            parent = os.path.dirname(self.path) or "."
            os.makedirs(parent, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=parent, prefix=".journal-", suffix=".tmp"
            )
            try:
                header = {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "config_hash": self.config_hash,
                }
                with os.fdopen(fd, "w") as fh:
                    fh.write(json.dumps(header, sort_keys=True) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        self._fh = open(self.path, "a", encoding="utf-8")
        self._lock()
        # A crash mid-append can leave a torn final line with no
        # newline; appending straight after it would glue the next
        # record onto the garbage and lose *both* on the next resume.
        # Terminate the torn line so every new record starts clean.
        with open(self.path, "rb") as check:
            check.seek(0, os.SEEK_END)
            if check.tell() > 0:
                check.seek(-1, os.SEEK_END)
                if check.read(1) != b"\n":
                    self._fh.write("\n")
                    self._fh.flush()
        return self

    def _lock(self) -> None:
        """Advisory exclusive lock on the journal (see
        :class:`JournalLocked`).  Platforms without ``fcntl`` skip the
        guard -- the single-writer contract is then on the operator."""
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platform
            return
        try:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh, self._fh = self._fh, None
            fh.close()
            raise JournalLocked(
                f"journal {self.path} is locked by another live sweep "
                f"process; two concurrent writers would corrupt "
                f"exactly-once resume.  Wait for that sweep to finish "
                f"(the lock releases on close/exit) or pass a "
                f"different --journal/--resume path."
            ) from None

    @staticmethod
    def _read_header(path) -> dict:
        # errors="replace": a crash can tear the file mid multi-byte
        # UTF-8 sequence; decoding must degrade to a skipped line, not
        # raise out of the read loop.
        with open(path, encoding="utf-8", errors="replace") as fh:
            first = fh.readline().strip()
        try:
            header = json.loads(first) if first else {}
        except ValueError:
            header = {}
        if header.get("kind") != "header":
            raise JournalConfigMismatch(
                f"{path} is not a sweep journal (missing header line)"
            )
        return header

    # -- appending -----------------------------------------------------
    def record(
        self,
        t_switch: float,
        seed: int,
        runs,
        telemetry,
        violations,
        attempts: int = 1,
    ) -> None:
        """Append one completed task; flushed and fsynced before
        returning, so the entry survives any subsequent crash."""
        if self._fh is None:
            raise RuntimeError("journal is not open")
        entry = {
            "kind": "task",
            "t_switch": float(t_switch),
            "seed": int(seed),
            "attempts": int(attempts),
            "runs": [asdict(r) for r in runs],
            "telemetry": telemetry.as_json_dict(),
            "violations": [v.as_dict() for v in violations],
        }
        self._fh.write(json.dumps(entry, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- loading -------------------------------------------------------
    @staticmethod
    def load(path, config_hash: str) -> dict[tuple[float, int], tuple]:
        """Completed task outcomes from *path*, keyed ``(t_switch,
        seed)``.

        Verifies the header's config hash against *config_hash*
        (raising :class:`JournalConfigMismatch` otherwise) and skips
        undecodable lines -- a torn trailing line from a crash mid-append
        simply isn't resumed.  Values are ``(t_switch, seed, runs,
        telemetry, violations)`` tuples shaped exactly like a live
        ``_evaluate_task`` outcome.
        """
        from repro.experiments.runner import RunOutcome
        from repro.obs.audit import AuditViolation
        from repro.obs.telemetry import TaskTelemetry

        header = SweepJournal._read_header(path)
        if header.get("config_hash") != config_hash:
            raise JournalConfigMismatch(
                f"journal {path} was written for config hash "
                f"{header.get('config_hash')!r}, not {config_hash!r}"
            )
        entries: dict[tuple[float, int], tuple] = {}
        # errors="replace": a torn trailing line may cut a multi-byte
        # UTF-8 sequence; the mangled line then fails json.loads and is
        # skipped like any other torn line instead of raising
        # UnicodeDecodeError out of the iterator.
        with open(path, encoding="utf-8", errors="replace") as fh:
            fh.readline()  # header, already verified
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    if obj.get("kind") != "task":
                        continue
                    t = float(obj["t_switch"])
                    seed = int(obj["seed"])
                    runs = [RunOutcome(**r) for r in obj["runs"]]
                    telemetry = TaskTelemetry(**obj["telemetry"])
                    violations = [
                        AuditViolation(**v) for v in obj["violations"]
                    ]
                except (ValueError, KeyError, TypeError):
                    continue  # torn or foreign line: not resumable
                entries[(t, seed)] = (t, seed, runs, telemetry, violations)
        return entries


# ----------------------------------------------------------------------
# worker-side supervision
# ----------------------------------------------------------------------
def _alarm_usable() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


class _deadline:
    """Context manager: raise :class:`TaskTimeout` after *seconds*.

    Uses ``SIGALRM``/``setitimer`` where available (POSIX main thread);
    elsewhere it is a no-op and the parent-side watchdog is the only
    defense against hangs.
    """

    def __init__(self, seconds: Optional[float]):
        self.seconds = seconds
        self._armed = False
        self._previous = None

    def __enter__(self):
        if self.seconds and _alarm_usable():
            def _fire(signum, frame):
                raise TaskTimeout(f"task exceeded {self.seconds:g}s")

            self._previous = signal.signal(signal.SIGALRM, _fire)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self._armed = True
        return self

    def __exit__(self, *exc):
        if self._armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def _maybe_chaos(t_switch: float, seed: int) -> None:
    """Test-only fault injection hook for the chaos harness.

    When ``REPRO_CHAOS_DIR`` names a directory, a flag file
    ``kill-<t_switch>-<seed>`` makes this worker die hard
    (``os._exit``, breaking the whole pool),
    ``hang-<t_switch>-<seed>`` makes it sleep past any deadline,
    ``fail-<t_switch>-<seed>`` raises a plain task-local error (the
    worker survives), and ``slow-<t_switch>-<seed>`` delays the task
    by one second while staying well within its deadline.  Each flag
    is consumed (unlinked) before acting, so the injected fault
    strikes exactly one attempt and the retry succeeds.  No-op outside
    the chaos tests.
    """
    chaos_dir = os.environ.get(CHAOS_DIR_ENV)
    if not chaos_dir:
        return
    cell = f"{t_switch:g}-{seed}"
    if _consume_flag(os.path.join(chaos_dir, f"kill-{cell}")):
        os._exit(1)
    if _consume_flag(os.path.join(chaos_dir, f"hang-{cell}")):
        time.sleep(3600.0)
    if _consume_flag(os.path.join(chaos_dir, f"fail-{cell}")):
        raise RuntimeError(f"chaos: injected failure on cell {cell}")
    if _consume_flag(os.path.join(chaos_dir, f"slow-{cell}")):
        time.sleep(1.0)


def _consume_flag(path: str) -> bool:
    try:
        os.unlink(path)
        return True
    except OSError as exc:
        if exc.errno not in (errno.ENOENT, errno.ENOTDIR):
            raise
        return False


def _classify(exc: BaseException) -> str:
    """Map a task exception onto the :data:`TASK_ERROR_KINDS` taxonomy."""
    from repro.core.trace_io import TraceIntegrityError

    if isinstance(exc, TaskTimeout):
        return "timeout"
    if isinstance(exc, TraceIntegrityError):
        return "cache-corrupt"
    if isinstance(exc, (BrokenExecutor, BrokenPipeError, SystemExit)):
        return "worker-crash"
    return "protocol-error"


def _supervised_entry(index: int, args: tuple, timeout_s: Optional[float]):
    """Pool entry point: run one task under its deadline.

    Returns ``(index, outcome, None)`` on success or ``(index, None,
    TaskError)`` on a failure the worker itself survived (timeouts,
    protocol errors); a hard worker death surfaces in the parent as a
    broken future instead.
    """
    t_switch, seed = args[1], args[2]
    try:
        _maybe_chaos(t_switch, seed)
        with _deadline(timeout_s):
            from repro.experiments.runner import _evaluate_task

            outcome = _evaluate_task(*args)
        return index, outcome, None
    # SystemExit is caught here too: letting it escape would abort the
    # pool worker's serve loop (and surface as a raw SystemExit from
    # future.result() in the parent) for what is just a failed task.
    except (Exception, SystemExit) as exc:
        return index, None, TaskError(
            kind=_classify(exc),
            t_switch=t_switch,
            seed=seed,
            detail=repr(exc),
        )


# ----------------------------------------------------------------------
# signal draining
# ----------------------------------------------------------------------
class _SignalDrain:
    """Install SIGINT/SIGTERM handlers that request a graceful drain.

    First signal: set :attr:`triggered` (the supervisor stops
    dispatching, flushes the journal, returns partial results).  Second
    SIGINT: restore the default behavior so a stuck drain can still be
    force-killed.  Outside the main thread (or where signals are
    unavailable) this degrades to a no-op.
    """

    def __init__(self):
        self.triggered = False
        self._previous: dict[int, Any] = {}

    def __enter__(self):
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except (ValueError, OSError, AttributeError):
                pass  # non-main thread / unsupported platform
        return self

    def _handle(self, signum, frame):
        if self.triggered:  # second signal: give up gracefully draining
            self.restore()
            raise KeyboardInterrupt
        self.triggered = True

    def restore(self) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):
                pass
        self._previous = {}

    def __exit__(self, *exc):
        self.restore()
        return False


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _TaskSpec:
    index: int
    t_switch: float
    seed: int
    args: tuple


def _backoff(config, attempt: int, rng: random.Random) -> float:
    """Delay before re-dispatching a task that failed *attempt* times."""
    base = config.retry_backoff_s * (2 ** max(0, attempt - 1))
    return base * (1.0 + config.retry_jitter * rng.random())


def execute(
    config, tasks: Sequence[tuple], fleet=None
) -> ExecutionReport:
    """Run the sweep's task grid with supervision, healing, journaling
    and resumption; the runner assembles the report into a
    :class:`~repro.experiments.runner.SweepResult`.

    *fleet* (a :class:`repro.obs.fleet.FleetAggregator`, owned by the
    runner's :class:`~repro.obs.fleet.FleetPlane`) rides along to the
    sharded coordinator, which merges worker metric deltas and spans
    into it.  Serial and pooled sweeps leave it untouched -- their
    metrics already live in this process's registry.

    *tasks* is the point-major list of ``_evaluate_task`` argument
    tuples (``tasks[i][1]`` / ``tasks[i][2]`` are the task's t_switch
    and seed).
    """
    from repro.experiments.progress import ProgressReporter

    specs = [_TaskSpec(i, t[1], t[2], tuple(t)) for i, t in enumerate(tasks)]
    report = ExecutionReport(outcomes=[None] * len(specs))
    config_hash = sweep_config_hash(config)
    reporter = ProgressReporter(
        total=len(specs),
        enabled=getattr(config, "progress", None),
        heartbeat_path=getattr(config, "heartbeat_path", None),
    )

    if config.resume_from and os.path.exists(config.resume_from):
        entries = SweepJournal.load(config.resume_from, config_hash)
        for spec in specs:
            hit = entries.get((spec.t_switch, spec.seed))
            if hit is not None:
                report.outcomes[spec.index] = hit
                report.resumed += 1
                reporter.task_done(resumed=True)

    journal = None
    if config.journal_path:
        journal = SweepJournal(config.journal_path, config_hash).open()

    pending = [s for s in specs if report.outcomes[s.index] is None]
    # Deterministic jitter per sweep: retries are reproducible and
    # tests can reason about delays.
    rng = random.Random(int(config_hash[:8], 16))
    sharded = bool(
        getattr(config, "shards", 0) or getattr(config, "shard_listen", None)
    )
    try:
        with _SignalDrain() as drain:
            if sharded and pending:
                from repro.experiments.sharded import run_sharded

                run_sharded(
                    config, pending, report, journal, drain, rng, reporter,
                    fleet=fleet,
                )
            elif config.workers > 1 and pending:
                _run_pooled(
                    config, pending, report, journal, drain, rng, reporter
                )
            elif pending:
                _run_serial(
                    config, pending, report, journal, drain, rng, reporter
                )
            report.interrupted = drain.triggered
    finally:
        reporter.close()
        if journal is not None:
            journal.close()
    return report


def _complete(spec, outcome, attempts, report, journal, reporter) -> None:
    t, seed, runs, telemetry, violations = outcome
    telemetry.attempts = attempts
    report.outcomes[spec.index] = outcome
    if journal is not None:
        journal.record(
            t, seed, runs, telemetry, violations, attempts=attempts
        )
    reporter.task_done(telemetry)


def _run_serial(config, pending, report, journal, drain, rng, reporter) -> None:
    from repro.experiments.runner import _evaluate_task

    for spec in pending:
        if drain.triggered:
            return
        attempts = 0
        while True:
            attempts += 1
            try:
                with _deadline(config.task_timeout_s):
                    outcome = _evaluate_task(*spec.args)
                _complete(spec, outcome, attempts, report, journal, reporter)
                break
            except KeyboardInterrupt:
                raise
            except (Exception, SystemExit) as exc:
                error = TaskError(
                    kind=_classify(exc),
                    t_switch=spec.t_switch,
                    seed=spec.seed,
                    attempts=attempts,
                    detail=repr(exc),
                )
                if attempts > config.max_task_retries:
                    report.errors.append(error)
                    reporter.task_quarantined()
                    break
                if drain.triggered:
                    # Draining with retries left: like the pooled path,
                    # leave the cell as a plain hole a resumed run will
                    # re-execute, not a quarantined error.
                    break
                report.retries += 1
                reporter.task_retry()
                time.sleep(_backoff(config, attempts, rng))


def _run_pooled(config, pending, report, journal, drain, rng, reporter) -> None:
    from repro.experiments import runner as _runner
    from repro.obs.metrics import registry as _metrics_registry

    queue = deque(pending)
    waiting: list[tuple[float, int, _TaskSpec]] = []  # (due, tie, spec)
    tie = 0
    attempts: dict[int, int] = {}
    inflight: dict = {}  # future -> spec
    # Watchdog deadlines, keyed by future, armed only once the future is
    # observed ``running()`` -- never at submission, where a task still
    # queued behind its siblings would be charged for their runtime and
    # a deep backlog would read as a pool full of hung workers.
    deadlines: dict = {}  # future -> watchdog deadline (monotonic)
    hung_killed: set = set()  # futures whose own hang triggered a kill
    collateral: set = set()  # healthy in-flight futures doomed by it
    watchdog_budget = (
        config.task_timeout_s * 1.5 + _WATCHDOG_GRACE_S
        if config.task_timeout_s
        else None
    )
    pool = _runner._get_pool(config.workers)

    def fail(spec: _TaskSpec, error: TaskError) -> None:
        nonlocal tie
        error.attempts = attempts[spec.index]
        if attempts[spec.index] > config.max_task_retries:
            report.errors.append(error)  # quarantined: explicit hole
            reporter.task_quarantined()
        elif drain.triggered:
            pass  # draining: leave the cell for a resumed run
        else:
            report.retries += 1
            reporter.task_retry()
            due = time.monotonic() + _backoff(
                config, attempts[spec.index], rng
            )
            tie += 1
            heapq.heappush(waiting, (due, tie, spec))

    while queue or waiting or inflight:
        if drain.triggered:
            # Drain: abandon queued and waiting work, let in-flight
            # tasks finish (they journal), then return.
            queue.clear()
            waiting.clear()
            if not inflight:
                return
        now = time.monotonic()
        while waiting and waiting[0][0] <= now:
            queue.append(heapq.heappop(waiting)[2])
        # -- dispatch ---------------------------------------------------
        # Cap in-flight work at the pool width so a submitted task
        # starts executing (almost) immediately: that makes running()
        # a faithful "began executing" signal for the watchdog below,
        # and keeps the drain path from waiting on a deep backlog.
        while (
            queue
            and not drain.triggered
            and len(inflight) < config.workers
        ):
            spec = queue.popleft()
            attempts[spec.index] = attempts.get(spec.index, 0) + 1
            try:
                future = pool.submit(
                    _supervised_entry,
                    spec.index,
                    spec.args,
                    config.task_timeout_s,
                )
            except (BrokenExecutor, RuntimeError):
                # The pool died between tasks: heal it and re-dispatch.
                attempts[spec.index] -= 1
                queue.appendleft(spec)
                pool = _runner._get_pool(config.workers)
                _metrics_registry().counter(
                    "repro_sweep_pool_rebuilds_total"
                ).inc()
                deadlines.clear()
                continue
            inflight[future] = spec
        if not inflight:
            if waiting and not drain.triggered:
                time.sleep(
                    min(_TICK_S, max(0.0, waiting[0][0] - time.monotonic()))
                )
            continue
        # -- collect ----------------------------------------------------
        done, _ = futures_wait(
            set(inflight), timeout=_TICK_S, return_when=FIRST_COMPLETED
        )
        pool_broke = False
        for future in done:
            spec = inflight.pop(future)
            deadlines.pop(future, None)
            was_hung = future in hung_killed
            hung_killed.discard(future)
            was_collateral = future in collateral
            collateral.discard(future)
            crashed = False
            try:
                _, outcome, error = future.result()
            except KeyboardInterrupt:
                raise
            except BaseException as exc:
                # The worker died (os._exit, SIGKILL, OOM): the future
                # breaks, and usually the whole executor with it.  The
                # wide catch matters: a worker that raised SystemExit
                # (or a cancelled future) re-raises a *non-Exception*
                # BaseException from result(), and must route through
                # the same fail path instead of crashing the supervisor.
                crashed = True
                pool_broke = True
                outcome = None
                if was_hung:
                    error = TaskError(
                        kind="timeout",
                        t_switch=spec.t_switch,
                        seed=spec.seed,
                        detail=f"hung worker killed by watchdog: {exc!r}",
                    )
                else:
                    error = TaskError(
                        kind="worker-crash",
                        t_switch=spec.t_switch,
                        seed=spec.seed,
                        detail=repr(exc),
                    )
            if error is None:
                _complete(
                    spec,
                    outcome,
                    attempts[spec.index],
                    report,
                    journal,
                    reporter,
                )
            elif crashed and was_collateral and not drain.triggered:
                # This future died only because the watchdog shot the
                # pool out from under a hung sibling: re-dispatch it
                # without charging the task an attempt or a retry.
                attempts[spec.index] -= 1
                queue.append(spec)
            else:
                fail(spec, error)
        # -- heal -------------------------------------------------------
        if pool_broke or getattr(pool, "_broken", False):
            pool = _runner._get_pool(config.workers)
            _metrics_registry().counter(
                "repro_sweep_pool_rebuilds_total"
            ).inc()
            # Every armed deadline belongs to a future of the dead
            # pool; drop them so a stale one can never trigger a kill
            # against the fresh pool's workers.
            deadlines.clear()
        # -- hung-worker watchdog --------------------------------------
        if watchdog_budget is not None and inflight:
            now = time.monotonic()
            for future in inflight:
                if future not in deadlines and future.running():
                    deadlines[future] = now + watchdog_budget
            hung = [f for f, dl in deadlines.items() if dl <= now]
            if hung:
                # The worker-side alarm failed to fire (blocked in C
                # code or alarm-less platform).  Killing any worker
                # breaks the standard-library pool as a unit, so the
                # innocent in-flight futures are marked collateral:
                # their re-dispatch above is free of retry accounting.
                for f in hung:
                    deadlines.pop(f, None)
                    hung_killed.add(f)
                for f in inflight:
                    if f not in hung_killed:
                        collateral.add(f)
                _metrics_registry().counter(
                    "repro_sweep_watchdog_kills_total"
                ).inc(len(hung))
                _kill_pool_workers(pool)


def _kill_pool_workers(pool) -> None:
    """Forcefully terminate a pool's worker processes (watchdog path)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, AttributeError):  # already gone
            pass
