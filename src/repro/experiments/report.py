"""Paper-style reporting: tables, gains, ASCII figures."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.plotting import ascii_plot
from repro.core.metrics import gain_percent
from repro.experiments.runner import SweepResult


def points_table(result: SweepResult) -> str:
    """The rows behind one figure: mean N_tot per (t_switch, protocol),
    plus the basic/forced split and the multi-seed spread."""
    protocols = list(result.protocols())
    header = (
        f"{'T_switch':>9} "
        + " ".join(f"{p:>10}" for p in protocols)
        + "   (mean N_tot; spread over seeds in %)"
    )
    lines = [header]
    for point in result.points:
        cells = []
        for name in protocols:
            s = point.summary(name)
            cells.append(f"{s.mean:>10.1f}")
        spreads = ", ".join(
            f"{name} {100 * point.summary(name).relative_spread:.1f}%"
            for name in protocols
        )
        lines.append(f"{point.t_switch:>9.0f} " + " ".join(cells) + f"   [{spreads}]")
    return "\n".join(lines)


def gains_table(result: SweepResult) -> str:
    """The paper's headline numbers: index-based gain over TP and QBC's
    gain over BCS at each sweep point."""
    protocols = set(result.protocols())
    lines = [f"{'T_switch':>9} {'BCS vs TP':>12} {'QBC vs TP':>12} {'QBC vs BCS':>12}"]
    for point in result.points:
        def mean(name: str) -> float:
            return point.mean_total(name)

        bcs_tp = (
            gain_percent(mean("TP"), mean("BCS"))
            if {"TP", "BCS"} <= protocols
            else float("nan")
        )
        qbc_tp = (
            gain_percent(mean("TP"), mean("QBC"))
            if {"TP", "QBC"} <= protocols
            else float("nan")
        )
        qbc_bcs = (
            gain_percent(mean("BCS"), mean("QBC"))
            if {"BCS", "QBC"} <= protocols
            else float("nan")
        )
        lines.append(
            f"{point.t_switch:>9.0f} {bcs_tp:>11.1f}% {qbc_tp:>11.1f}% "
            f"{qbc_bcs:>11.1f}%"
        )
    return "\n".join(lines)


def figure_report(result: SweepResult, figure: int | None = None) -> str:
    """Full report of one sweep: parameters, table, gains, ASCII plot."""
    base = result.config.base
    title = (
        f"Ps={base.p_send} Pswitch={base.p_switch} "
        f"H={int(100 * base.heterogeneity)}% sim_time={base.sim_time:g}"
    )
    if figure is not None:
        title = f"Figure {figure}: {title}"
    series = {name: result.curve(name) for name in result.protocols()}
    plot = ascii_plot(series, title="N_tot vs T_switch (log-log)")
    return "\n".join(
        [
            title,
            "",
            points_table(result),
            "",
            "Gains (reduction of N_tot):",
            gains_table(result),
            "",
            plot,
        ]
    )


def overhead_table(
    rows: Sequence[dict],
) -> str:
    """Control-information overhead comparison (piggyback integers and
    control messages), for the Section 2 discussion."""
    header = (
        f"{'protocol':>10} {'N_tot':>8} {'pg ints/msg':>12} "
        f"{'pg ints total':>14} {'ctrl msgs':>10}"
    )
    lines = [header]
    for row in rows:
        lines.append(
            f"{row['protocol']:>10} {row['n_total']:>8} "
            f"{row.get('piggyback_per_msg', 0):>12} "
            f"{row.get('piggyback_ints', 0):>14} "
            f"{row.get('control_messages', 0):>10}"
        )
    return "\n".join(lines)
