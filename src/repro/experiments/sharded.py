"""Sharded sweep service: fault-tolerant multi-worker dispatch.

The resilient sweep supervisor (:mod:`repro.experiments.resilience`)
heals an *in-process* pool; this module takes the same (point, seed)
grid across a real process/network boundary -- the ROADMAP's "from one
box to a fleet" step.  A **coordinator** partitions the grid into
*shards* (small batches of cells), leases them to **worker processes**
over :mod:`multiprocessing.connection` and streams per-cell outcomes
back as they complete.  The paper's own subject matter -- coordinator
failure, lost participants, log-based exactly-once recovery -- is the
design brief for the service itself:

* **Length-prefixed, version-tagged frames.**  Every message crosses
  the (authenticated) connection as one frame: an 8-byte header
  (protocol version + payload length) followed by a pickled dict.  A
  version skew or torn frame raises a typed
  :class:`ShardProtocolError` instead of mis-running a sweep.
* **Shard leases with heartbeat liveness.**  A worker holds at most
  one lease; a background pump sends heartbeat frames every
  ``shard_heartbeat_s``.  A leased worker silent past
  ``shard_lease_timeout_s`` has its lease *revoked*: its incomplete
  cells re-enter the dispatch queue with exponential backoff, charged
  as ``worker-lost`` retries under the existing
  :class:`~repro.experiments.resilience.TaskError` taxonomy (and
  quarantined as explicit holes when the budget runs out).  Late
  results from a revoked lease are *fenced*: accepted only if the cell
  is still incomplete, dropped as duplicates otherwise -- the journal
  never records a cell twice.
* **Exactly-once resume.**  Workers only report; the coordinator is
  the single journal writer (the fsynced
  :class:`~repro.experiments.resilience.SweepJournal`, now guarded by
  an advisory lock so two coordinators cannot share a ledger).  A
  crashed sharded sweep resumes exactly like a pooled one.
* **Graceful degradation.**  Locally spawned workers that die are
  respawned (bounded budget); when a shard dies permanently the sweep
  continues on the survivors; when *no* worker can ever come back the
  remaining cells become quarantined ``worker-lost`` holes instead of
  a hang.  SIGINT/SIGTERM drain in-flight cells and leave the rest as
  resumable holes.
* **Whole-worker chaos.**  ``REPRO_CHAOS_DIR`` flag files extend the
  PR 3 harness to the sharded path: ``kill-worker-<t>-<seed>`` makes a
  worker die hard mid-shard, ``drop-conn-<t>-<seed>`` severs its
  connection, ``stall-heartbeat-<t>-<seed>`` freezes it past the lease
  deadline (exercising fencing + reconnect).  The chaos tests assert
  the final sweep is value-identical to a clean serial run.

Per-shard operational counters land in the process-local metrics
registry (:mod:`repro.obs.metrics`): ``repro_shard_leases_granted_total``,
``repro_shard_leases_revoked_total{reason=...}``,
``repro_shard_cells_reassigned_total``, ``repro_shard_heartbeats_total``,
``repro_shard_reconnects_total``, ``repro_shard_worker_respawns_total``,
``repro_shard_stale_results_total``,
``repro_shard_duplicates_dropped_total`` and the
``repro_shard_workers_alive`` gauge.

Entry points: :func:`run_sharded` (called by the resilience supervisor
when ``SweepConfig.shards`` / ``shard_listen`` is set) and
:func:`worker_main` (the ``repro shard-worker`` subcommand, for
workers joining from other processes or machines).
"""

from __future__ import annotations

import heapq
import os
import pickle
import signal
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Client, Connection, Listener, wait
from typing import Any, Optional

from repro.experiments.resilience import (
    CHAOS_DIR_ENV,
    TaskError,
    _backoff,
    _complete,
    _consume_flag,
    _classify,
    _deadline,
)

__all__ = [
    "PROTOCOL_VERSION",
    "AUTHKEY_ENV",
    "FrameError",
    "ShardProtocolError",
    "VersionMismatch",
    "parse_address",
    "recv_frame",
    "send_frame",
    "run_sharded",
    "worker_main",
]

#: Wire protocol version; bumped on any frame-shape change.  Both ends
#: tag every frame with it and refuse mismatches.
#: v2: register/heartbeat frames carry a ``mono`` clock sample and the
#: fleet observability plane adds the ``obs-delta`` frame kind
#: (worker metric deltas; see :mod:`repro.obs.fleet`).
PROTOCOL_VERSION = 2

#: Hex-encoded connection authkey for *external* workers
#: (``repro shard-worker``); locally spawned workers inherit a random
#: key directly.  Must match on both ends.
AUTHKEY_ENV = "REPRO_SHARD_AUTHKEY"

#: Frame header: (protocol version, payload byte length), network order.
_HEADER = struct.Struct("!II")

#: Coordinator poll tick, seconds.
_TICK_S = 0.05

#: How long a freshly accepted connection may take to send its
#: ``register`` frame before the coordinator drops it.
_REGISTER_GRACE_S = 10.0

#: Respawn budget per locally spawned worker slot.
_RESPAWNS_PER_SLOT = 2

#: Bounded wait for the workers' final obs-delta flush at shutdown.
#: Healthy workers answer in milliseconds; this only bites when one
#: is wedged, and even then it delays teardown, never correctness.
_OBS_HARVEST_S = 2.0


class ShardProtocolError(RuntimeError):
    """The shard wire protocol was violated (bad frame, version skew)."""


class FrameError(ShardProtocolError):
    """A frame was structurally invalid (short header, torn payload)."""


class VersionMismatch(ShardProtocolError):
    """The peer speaks a different shard protocol version."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def send_frame(
    conn: Connection, msg: dict, lock: Optional[threading.Lock] = None
) -> None:
    """Send one version-tagged, length-prefixed frame.

    *lock* serializes writers when several threads share the
    connection (the worker's heartbeat pump vs its main loop)."""
    payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    frame = _HEADER.pack(PROTOCOL_VERSION, len(payload)) + payload
    if lock is not None:
        with lock:
            conn.send_bytes(frame)
    else:
        conn.send_bytes(frame)


def recv_frame(conn: Connection) -> dict:
    """Receive and validate one frame (see :func:`send_frame`)."""
    frame = conn.recv_bytes()
    if len(frame) < _HEADER.size:
        raise FrameError(f"short frame: {len(frame)} bytes")
    version, length = _HEADER.unpack_from(frame)
    if version != PROTOCOL_VERSION:
        raise VersionMismatch(
            f"peer speaks shard protocol v{version}, this side "
            f"v{PROTOCOL_VERSION}"
        )
    payload = frame[_HEADER.size:]
    if len(payload) != length:
        raise FrameError(
            f"torn frame: header declares {length} payload bytes, got "
            f"{len(payload)}"
        )
    msg = pickle.loads(payload)
    if not isinstance(msg, dict) or "kind" not in msg:
        raise FrameError("frame payload is not a tagged message dict")
    return msg


def parse_address(spec: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (ValueError on bad input)."""
    host, sep, port = str(spec).rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"shard address must be 'host:port', got {spec!r}"
        )
    try:
        port_n = int(port)
    except ValueError:
        raise ValueError(f"shard address port must be an integer: {spec!r}")
    if not 0 <= port_n <= 65535:
        raise ValueError(f"shard address port out of range: {spec!r}")
    return host, port_n


def _authkey() -> bytes:
    """The connection authkey: :data:`AUTHKEY_ENV` (hex) or random."""
    env = os.environ.get(AUTHKEY_ENV)
    if env:
        try:
            return bytes.fromhex(env)
        except ValueError:
            raise ValueError(
                f"{AUTHKEY_ENV} must be a hex string, got {env!r}"
            )
    return os.urandom(16)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class _HeartbeatPump(threading.Thread):
    """Background thread: one heartbeat frame every *interval* seconds.

    Shares the connection with the worker's main loop through a send
    lock.  ``pause``/``unpause`` exist for the stall-heartbeat chaos
    hook; a send failure sets :attr:`dead` so the main loop can stop.

    When the coordinator enabled the fleet plane (*obs_source* set),
    each beat is followed by an ``obs-delta`` frame carrying whatever
    changed in this process's metrics registry since the last one --
    nothing when nothing changed, so an idle worker still costs one
    frame per interval, not two.  Every frame samples
    ``time.monotonic()`` so the coordinator can estimate this
    process's clock offset for span alignment.
    """

    def __init__(
        self,
        conn: Connection,
        lock: threading.Lock,
        interval_s: float,
        obs_source=None,
    ):
        super().__init__(name="shard-heartbeat", daemon=True)
        self.conn = conn
        self.lock = lock
        self.interval_s = interval_s
        self.obs_source = obs_source
        self.shard_id: Optional[int] = None
        self.dead = threading.Event()
        self._stop = threading.Event()
        self._running = threading.Event()
        self._running.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            if not self._running.is_set():
                continue
            try:
                send_frame(
                    self.conn,
                    {
                        "kind": "heartbeat",
                        "shard_id": self.shard_id,
                        "mono": time.monotonic(),
                    },
                    self.lock,
                )
                _flush_obs(
                    self.conn, self.lock, self.obs_source, self.shard_id
                )
            except (OSError, ValueError, BrokenPipeError):
                self.dead.set()
                return

    def pause(self) -> None:
        self._running.clear()

    def unpause(self) -> None:
        self._running.set()

    def stop(self) -> None:
        self._stop.set()


def _worker_chaos(
    t_switch: float, seed: int, conn: Connection, pump: _HeartbeatPump,
    stall_s: float,
) -> None:
    """Sharded chaos hooks (test-only; see module docstring).

    ``kill-worker-<cell>`` dies hard (whole process), ``drop-conn-<cell>``
    severs the connection while the worker lives on (its sends then
    fail), ``stall-heartbeat-<cell>`` freezes worker *and* pump past the
    coordinator's lease deadline, then resumes -- the classic GC-pause /
    network-partition shape that lease fencing exists for.  Flags are
    consumed, so each strikes exactly one attempt.
    """
    chaos_dir = os.environ.get(CHAOS_DIR_ENV)
    if not chaos_dir:
        return
    cell = f"{t_switch:g}-{seed}"
    if _consume_flag(os.path.join(chaos_dir, f"kill-worker-{cell}")):
        os._exit(1)
    if _consume_flag(os.path.join(chaos_dir, f"drop-conn-{cell}")):
        conn.close()
    if _consume_flag(os.path.join(chaos_dir, f"stall-heartbeat-{cell}")):
        pump.pause()
        time.sleep(stall_s)
        pump.unpause()


def _drain_control(conn: Connection) -> Optional[str]:
    """Non-blocking read of control frames between cells; returns
    "drain"/"shutdown" when the coordinator asked us to stop."""
    try:
        while conn.poll(0):
            msg = recv_frame(conn)
            if msg.get("kind") in ("drain", "shutdown"):
                return msg["kind"]
    except (EOFError, OSError):
        return "shutdown"
    return None


def _flush_obs(
    conn: Connection,
    lock: threading.Lock,
    obs_source,
    shard_id: Optional[int],
) -> None:
    """Send one ``obs-delta`` frame when the registry changed.

    Send errors propagate to the caller (the pump marks itself dead,
    the main loop's own handling kicks in); an *empty* delta sends
    nothing at all.
    """
    if obs_source is None:
        return
    delta = obs_source.delta()
    if delta is None:
        return
    send_frame(
        conn,
        {
            "kind": "obs-delta",
            "shard_id": shard_id,
            "mono": time.monotonic(),
            "delta": delta,
        },
        lock,
    )


def _goodbye(conn: Connection, lock: threading.Lock) -> None:
    """Best-effort farewell: a coordinator that already closed the
    connection after its shutdown frame must not turn a clean drain
    into a reported connection loss."""
    try:
        send_frame(conn, {"kind": "goodbye"}, lock)
    except (OSError, ValueError, BrokenPipeError):
        pass


def worker_main(
    address: tuple[str, int],
    authkey: Optional[bytes] = None,
    *,
    connect_timeout_s: float = 15.0,
) -> int:
    """One shard worker: connect, register, execute leased shards.

    Blocks until the coordinator drains/shuts the worker down (exit
    code 0) or the connection is lost (exit code 3).  Used both by the
    locally spawned worker processes and the ``repro shard-worker``
    CLI subcommand (*authkey* then defaults to :data:`AUTHKEY_ENV`).
    """
    from repro.engine import RunSpec
    from repro.experiments.runner import _evaluate_task

    if authkey is None:
        authkey = _authkey()
    conn = _connect_with_retry(address, authkey, connect_timeout_s)
    lock = threading.Lock()
    send_frame(
        conn,
        {
            "kind": "register",
            "pid": os.getpid(),
            "version": PROTOCOL_VERSION,
            "mono": time.monotonic(),
        },
        lock,
    )
    hello = recv_frame(conn)
    if hello.get("kind") != "hello":
        raise ShardProtocolError(
            f"expected a hello frame, got {hello.get('kind')!r}"
        )
    spec = RunSpec.from_wire(hello["spec"])
    task = hello["task"]
    timeout_s = task.get("timeout_s")
    stall_s = task["lease_timeout_s"] + 2 * task["heartbeat_interval_s"] + 0.5
    obs_source = None
    if task.get("obs_fleet"):
        from repro.obs.fleet import MetricsDeltaSource
        from repro.obs.metrics import registry as _worker_registry

        obs_source = MetricsDeltaSource(_worker_registry())
    pump = _HeartbeatPump(
        conn, lock, task["heartbeat_interval_s"], obs_source=obs_source
    )
    pump.start()
    try:
        while True:
            msg = recv_frame(conn)
            kind = msg.get("kind")
            if kind == "shard":
                shard_id = msg["shard_id"]
                pump.shard_id = shard_id
                stopped = None
                for t_switch, seed in msg["cells"]:
                    stopped = _drain_control(conn)
                    if stopped or pump.dead.is_set():
                        break
                    _worker_chaos(t_switch, seed, conn, pump, stall_s)
                    try:
                        with _deadline(timeout_s):
                            outcome = _evaluate_task(
                                spec.workload,
                                t_switch,
                                seed,
                                tuple(spec.protocols),
                                spec.use_cache,
                                spec.cache_dir,
                                spec.audit,
                                task["trace_spans"],
                                task["stream_path"],
                                spec.engine,
                                run_id=spec.run_id,
                            )
                    except (Exception, SystemExit) as exc:
                        send_frame(conn, {
                            "kind": "task-error",
                            "shard_id": shard_id,
                            "cell": (t_switch, seed),
                            "error_kind": _classify(exc),
                            "detail": repr(exc),
                        }, lock)
                    else:
                        send_frame(conn, {
                            "kind": "outcome",
                            "shard_id": shard_id,
                            "cell": (t_switch, seed),
                            "outcome": outcome,
                        }, lock)
                # Flush pending metric deltas at the lease boundary so
                # the coordinator's aggregate is fresh before the next
                # grant (and before a drain tears the connection down).
                _flush_obs(conn, lock, obs_source, shard_id)
                send_frame(
                    conn, {"kind": "shard-done", "shard_id": shard_id}, lock
                )
                pump.shard_id = None
                if stopped:
                    _goodbye(conn, lock)
                    return 0
            elif kind in ("drain", "shutdown"):
                try:
                    _flush_obs(conn, lock, obs_source, None)
                except (OSError, ValueError, BrokenPipeError):
                    pass
                _goodbye(conn, lock)
                return 0
            # Unknown control frames are ignored: a newer coordinator
            # may pump advisory frames an old worker doesn't know.
    except (EOFError, OSError, BrokenPipeError):
        return 3  # connection lost; the coordinator reassigns our lease
    finally:
        pump.stop()
        try:
            conn.close()
        except OSError:
            pass


def _connect_with_retry(
    address: tuple[str, int], authkey: bytes, timeout_s: float
) -> Connection:
    """Dial the coordinator, retrying until *timeout_s* (a worker may
    legitimately start before the coordinator listens)."""
    deadline = time.monotonic() + timeout_s
    last: Optional[BaseException] = None
    while time.monotonic() < deadline:
        try:
            return Client(tuple(address), authkey=authkey)
        except (ConnectionRefusedError, OSError) as exc:
            last = exc
            time.sleep(0.1)
    raise ConnectionError(
        f"could not reach coordinator at {address} within {timeout_s:g}s: "
        f"{last!r}"
    )


def _spawned_worker_main(address: tuple[str, int], authkey: bytes) -> None:
    """Entry point of locally spawned worker processes."""
    # The coordinator owns drain semantics: a terminal SIGINT must not
    # kill workers mid-cell (the coordinator's drain frame will).
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        pass
    raise SystemExit(worker_main(address, authkey))


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
@dataclass(slots=True)
class _Lease:
    """One shard grant: which worker owns which cells right now."""

    shard_id: int
    worker_id: int
    specs: list  # _TaskSpec
    done: set = field(default_factory=set)  # spec indexes reported back


@dataclass(slots=True, eq=False)
class _WorkerState:
    worker_id: int
    conn: Connection
    process: Any = None  # mp.Process for locally spawned workers
    pid: Optional[int] = None  # remote os.getpid() (clock-sync key)
    last_seen: float = 0.0
    lease: Optional[_Lease] = None
    busy: bool = False  # holds (or is still chewing a revoked) shard
    suspect: bool = False  # missed its liveness deadline


class _Coordinator:
    """Single-threaded dispatch loop (plus one accept thread).

    All frame IO, lease bookkeeping and journal writes happen on the
    supervising thread; the accept thread only hands over raw
    connections.
    """

    def __init__(self, config, pending, report, journal, drain, rng,
                 reporter, fleet=None):
        self.config = config
        self.fleet = fleet  # FleetAggregator when the plane is enabled
        self.report = report
        self.journal = journal
        self.drain = drain
        self.rng = rng
        self.reporter = reporter
        self.specs = list(pending)
        self.by_key = {(s.t_switch, s.seed): s for s in self.specs}
        self.queue = deque(self.specs)
        self.waiting: list[tuple[float, int, Any]] = []  # (due, tie, spec)
        self.tie = 0
        self.attempts: dict[int, int] = {}
        self.open_cells = len(self.specs)
        self.workers: dict[int, _WorkerState] = {}
        self.leases: dict[int, _Lease] = {}
        self.next_worker_id = 0
        self.next_shard_id = 0
        self.respawn_budget = _RESPAWNS_PER_SLOT * max(0, config.shards)
        self.authkey = _authkey()
        self.drain_sent = False
        self._accept_lock = threading.Lock()
        self._accepted: list[Connection] = []
        self._pending_conns: list[tuple[Connection, float]] = []
        # Locally spawned processes that have not registered yet,
        # keyed by pid; claimed by the matching register frame.
        self._unclaimed: dict[int, Any] = {}
        self._listener: Optional[Listener] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._ctx = get_context("spawn")
        n_cells = len(self.specs)
        if config.shard_size:
            self.shard_size = int(config.shard_size)
        else:
            # ~4 leases per worker: big enough to amortize framing,
            # small enough that a lost worker forfeits little work.
            slots = max(1, config.shards or 1)
            self.shard_size = max(1, -(-n_cells // (slots * 4)))
        self.sizer = None
        if getattr(config, "adaptive_shard_size", False):
            from repro.obs.fleet import AdaptiveShardSizer

            # Target about half the lease deadline so a lease sized on
            # a stale median still completes well inside its liveness
            # window; never grow past the static default (it already
            # bounds reassignment loss on worker death).
            self.sizer = AdaptiveShardSizer(
                target_lease_s=config.shard_lease_timeout_s / 2,
                max_cells=max(self.shard_size, 1),
            )

    # -- metrics -------------------------------------------------------
    @staticmethod
    def _metrics():
        from repro.obs.metrics import registry

        return registry()

    def _workers_alive_changed(self) -> None:
        alive = len(self.workers)
        self._metrics().gauge("repro_shard_workers_alive").set(alive)
        self.reporter.set_workers(alive)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self.config.shard_listen:
            address = parse_address(self.config.shard_listen)
        else:
            address = ("127.0.0.1", 0)
        self._listener = Listener(
            address, family="AF_INET", authkey=self.authkey
        )
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="shard-accept", daemon=True
        )
        self._accept_thread.start()
        for _ in range(self.config.shards):
            self._spawn_worker()

    @property
    def address(self) -> tuple[str, int]:
        return tuple(self._listener.address)

    def _accept_loop(self) -> None:
        from multiprocessing import AuthenticationError

        while True:
            try:
                conn = self._listener.accept()
            except (AuthenticationError, EOFError):
                continue  # one bad client must not stop the service
            except OSError:
                return  # listener closed: shutdown
            with self._accept_lock:
                self._accepted.append(conn)

    def _spawn_worker(self) -> None:
        process = self._ctx.Process(
            target=_spawned_worker_main,
            args=(self.address, bytes(self.authkey)),
            daemon=True,
        )
        process.start()
        # The worker registers through the normal accept path; the
        # process handle is claimed at registration time by pid.
        self._unclaimed[process.pid] = process

    # -- registration --------------------------------------------------
    def _admit_new_conns(self, now: float) -> None:
        with self._accept_lock:
            fresh, self._accepted = self._accepted, []
        for conn in fresh:
            self._pending_conns.append((conn, now + _REGISTER_GRACE_S))
        still = []
        for conn, deadline in self._pending_conns:
            try:
                if conn.poll(0):
                    msg = recv_frame(conn)
                    if msg.get("kind") != "register":
                        raise ShardProtocolError(
                            f"expected register, got {msg.get('kind')!r}"
                        )
                    self._register(conn, msg, now)
                    continue
            except (EOFError, OSError, ShardProtocolError):
                self._close_quietly(conn)
                continue
            if now >= deadline:
                self._close_quietly(conn)
            else:
                still.append((conn, deadline))
        self._pending_conns = still

    def _register(self, conn: Connection, msg: dict, now: float) -> None:
        wid = self.next_worker_id
        self.next_worker_id += 1
        process = self._unclaimed.pop(msg.get("pid"), None)
        worker = _WorkerState(
            worker_id=wid, conn=conn, process=process,
            pid=msg.get("pid"), last_seen=now
        )
        if self.fleet is not None:
            self.fleet.observe_clock(worker.pid, msg.get("mono"))
        try:
            send_frame(conn, self._hello_payload())
        except (OSError, ValueError):
            self._close_quietly(conn)
            return
        self.workers[wid] = worker
        self._workers_alive_changed()

    def _hello_payload(self) -> dict:
        from repro.engine import RunSpec

        config = self.config
        spec = RunSpec(
            protocols=tuple(config.protocols),
            workload=config.base,
            engine=config.engine,
            counters_only=True,
            audit=config.audit,
            use_cache=config.use_cache,
            cache_dir=config.cache_dir,
            run_id=getattr(config, "run_id", None),
        )
        trace_spans = bool(
            getattr(config, "trace_spans", False)
            or getattr(config, "trace_path", None)
        )
        return {
            "kind": "hello",
            "version": PROTOCOL_VERSION,
            "spec": spec.to_wire(),
            "task": {
                "timeout_s": config.task_timeout_s,
                "trace_spans": trace_spans,
                "stream_path": getattr(config, "stream_path", None),
                "heartbeat_interval_s": config.shard_heartbeat_s,
                "lease_timeout_s": config.shard_lease_timeout_s,
                "obs_fleet": self.fleet is not None,
            },
        }

    @staticmethod
    def _close_quietly(conn: Connection) -> None:
        try:
            conn.close()
        except OSError:
            pass

    # -- cell accounting ----------------------------------------------
    def _cell_open(self, spec) -> bool:
        return self.report.outcomes[spec.index] is None and not any(
            e.t_switch == spec.t_switch and e.seed == spec.seed
            for e in self.report.errors
        )

    def _complete_cell(self, spec, outcome) -> None:
        _complete(
            spec,
            outcome,
            self.attempts.get(spec.index, 1),
            self.report,
            self.journal,
            self.reporter,
        )
        self.open_cells -= 1
        if self.sizer is not None:
            # outcome = (t_switch, seed, runs, telemetry, violations);
            # observed wall time feeds the next lease's sizing.
            self.sizer.observe(getattr(outcome[3], "wall_time_s", None))

    def _fail_cell(self, spec, error: TaskError) -> None:
        """Shared retry/quarantine semantics (mirrors the pooled path)."""
        error.attempts = self.attempts.get(spec.index, 1)
        if error.attempts > self.config.max_task_retries:
            self.report.errors.append(error)
            self.reporter.task_quarantined()
            self.open_cells -= 1
        elif self.drain.triggered:
            pass  # draining: leave the cell as a resumable hole
        else:
            self.report.retries += 1
            self.reporter.task_retry()
            due = time.monotonic() + _backoff(
                self.config, error.attempts, self.rng
            )
            self.tie += 1
            heapq.heappush(self.waiting, (due, self.tie, spec))

    # -- leases --------------------------------------------------------
    def _grant(self, worker: _WorkerState) -> bool:
        size = self.shard_size
        if self.sizer is not None:
            size = self.sizer.suggest(self.shard_size)
            if size != self.shard_size:
                self._metrics().gauge(
                    "repro_shard_adaptive_lease_size"
                ).set(size)
        cells = []
        while self.queue and len(cells) < size:
            spec = self.queue.popleft()
            if self._cell_open(spec):
                cells.append(spec)
        if not cells:
            return False
        shard_id = self.next_shard_id
        self.next_shard_id += 1
        for spec in cells:
            self.attempts[spec.index] = self.attempts.get(spec.index, 0) + 1
        try:
            send_frame(worker.conn, {
                "kind": "shard",
                "shard_id": shard_id,
                "cells": [(s.t_switch, s.seed) for s in cells],
            })
        except (OSError, ValueError):
            # The connection died between frames: undo the dispatch
            # accounting (nothing ever ran) and lose the worker.
            for spec in cells:
                self.attempts[spec.index] -= 1
            self.queue.extendleft(reversed(cells))
            self._lose_worker(worker, reason="conn-lost")
            return False
        lease = _Lease(
            shard_id=shard_id, worker_id=worker.worker_id, specs=cells
        )
        self.leases[shard_id] = lease
        worker.lease = lease
        worker.busy = True
        self._metrics().counter("repro_shard_leases_granted_total").inc()
        return True

    def _revoke(self, lease: _Lease, reason: str) -> None:
        metrics = self._metrics()
        metrics.counter(
            "repro_shard_leases_revoked_total", reason=reason
        ).inc()
        self.leases.pop(lease.shard_id, None)
        worker = self.workers.get(lease.worker_id)
        if worker is not None and worker.lease is lease:
            worker.lease = None
        for spec in lease.specs:
            if spec.index in lease.done or not self._cell_open(spec):
                continue
            metrics.counter("repro_shard_cells_reassigned_total").inc()
            self._fail_cell(spec, TaskError(
                kind="worker-lost",
                t_switch=spec.t_switch,
                seed=spec.seed,
                detail=(
                    f"shard {lease.shard_id} lease revoked "
                    f"({reason}); cell reassigned"
                ),
            ))

    def _lose_worker(self, worker: _WorkerState, reason: str) -> None:
        """Connection-level loss: revoke, forget, maybe respawn."""
        if worker.lease is not None:
            self._revoke(worker.lease, reason)
        self.workers.pop(worker.worker_id, None)
        self._close_quietly(worker.conn)
        if worker.process is not None:
            worker.process.join(timeout=0.1)
            if worker.process.is_alive():
                worker.process.terminate()
        self._workers_alive_changed()
        if (
            worker.process is not None
            and self.respawn_budget > 0
            and self.open_cells > 0
            and not self.drain.triggered
        ):
            self.respawn_budget -= 1
            self._metrics().counter(
                "repro_shard_worker_respawns_total"
            ).inc()
            self._spawn_worker()

    # -- frame handling ------------------------------------------------
    def _mark_alive(self, worker: _WorkerState, now: float) -> None:
        worker.last_seen = now
        if worker.suspect:
            worker.suspect = False
            self._metrics().counter("repro_shard_reconnects_total").inc()

    def _handle(self, worker: _WorkerState, msg: dict, now: float) -> None:
        kind = msg.get("kind")
        self._mark_alive(worker, now)
        if kind == "heartbeat":
            self._metrics().counter("repro_shard_heartbeats_total").inc()
            if self.fleet is not None:
                self.fleet.observe_clock(worker.pid, msg.get("mono"))
            return
        if kind == "obs-delta":
            # Fleet metric deltas: seq-fenced by the aggregator, so a
            # duplicated or replayed frame never double-counts.
            if self.fleet is not None:
                self.fleet.observe_clock(worker.pid, msg.get("mono"))
                self.fleet.apply_delta(
                    worker.worker_id, msg.get("delta")
                )
            return
        if kind == "goodbye":
            worker.process = None  # departing cleanly: never respawn
            self._lose_worker(worker, reason="drained")
            return
        if kind in ("outcome", "task-error"):
            spec = self.by_key.get(tuple(msg.get("cell", ())))
            if spec is None:
                return
            lease = self.leases.get(msg.get("shard_id"))
            stale = lease is None or lease.worker_id != worker.worker_id
            if stale:
                self._metrics().counter(
                    "repro_shard_stale_results_total"
                ).inc()
            else:
                lease.done.add(spec.index)
            if kind == "outcome":
                if self.report.outcomes[spec.index] is not None:
                    self._metrics().counter(
                        "repro_shard_duplicates_dropped_total"
                    ).inc()
                elif self._cell_open(spec):
                    # Fencing: a late result from a revoked lease still
                    # lands exactly once -- the completed-cell check
                    # above is the journal's single dedupe gate.
                    self._complete_cell(spec, msg["outcome"])
                    if self.fleet is not None:
                        # Spans ride the (fenced) result frames, so a
                        # duplicate outcome never duplicates spans.
                        self.fleet.add_spans(
                            worker.worker_id,
                            msg.get("shard_id"),
                            getattr(msg["outcome"][3], "spans", None),
                        )
            elif not stale and self._cell_open(spec):
                self._fail_cell(spec, TaskError(
                    kind=msg.get("error_kind", "protocol-error"),
                    t_switch=spec.t_switch,
                    seed=spec.seed,
                    detail=msg.get("detail", ""),
                ))
            return
        if kind == "shard-done":
            worker.busy = False
            lease = self.leases.get(msg.get("shard_id"))
            if lease is not None and lease.worker_id == worker.worker_id:
                self.leases.pop(lease.shard_id, None)
                worker.lease = None
                # Cells the worker skipped (drain mid-shard) go back to
                # the queue without being charged an attempt.
                for spec in lease.specs:
                    if spec.index not in lease.done and self._cell_open(
                        spec
                    ):
                        self.attempts[spec.index] -= 1
                        self.queue.append(spec)
            return
        # Unknown frame kinds from newer workers are ignored.

    def _reap_unclaimed(self) -> None:
        """Spawned workers that died before registering (e.g. chaos
        killed them on their very first cell of a previous life) never
        reach :meth:`_lose_worker`; reap and replace them here."""
        for pid, process in list(self._unclaimed.items()):
            if process.is_alive():
                continue
            del self._unclaimed[pid]
            if (
                self.respawn_budget > 0
                and self.open_cells > 0
                and not self.drain.triggered
            ):
                self.respawn_budget -= 1
                self._metrics().counter(
                    "repro_shard_worker_respawns_total"
                ).inc()
                self._spawn_worker()

    # -- the loop ------------------------------------------------------
    def run(self) -> None:
        no_worker_since: Optional[float] = None
        try:
            while self.open_cells > 0:
                now = time.monotonic()
                if self.drain.triggered:
                    self._broadcast_drain()
                self._admit_new_conns(now)
                self._reap_unclaimed()
                # Promote due retries.
                while self.waiting and self.waiting[0][0] <= now:
                    spec = heapq.heappop(self.waiting)[2]
                    if self._cell_open(spec):
                        self.queue.append(spec)
                # Liveness: a leased worker silent past the deadline.
                for worker in list(self.workers.values()):
                    if (
                        worker.lease is not None
                        and not worker.suspect
                        and now - worker.last_seen
                        > self.config.shard_lease_timeout_s
                    ):
                        worker.suspect = True
                        self._revoke(worker.lease, "heartbeat-timeout")
                # Dispatch to idle, trusted workers.
                if not self.drain.triggered:
                    for worker in list(self.workers.values()):
                        if not self.queue:
                            break
                        if not worker.busy and not worker.suspect:
                            self._grant(worker)
                # Collect.
                conns = {w.conn: w for w in self.workers.values()}
                if conns:
                    for conn in wait(list(conns), timeout=_TICK_S):
                        worker = conns[conn]
                        try:
                            while True:
                                self._handle(
                                    worker, recv_frame(conn), now
                                )
                                if not conn.poll(0):
                                    break
                        except (EOFError, OSError, ShardProtocolError):
                            self._lose_worker(worker, reason="conn-lost")
                else:
                    time.sleep(_TICK_S)
                if self.drain.triggered and not self.leases:
                    return
                # Graceful degradation: nobody left and nobody coming.
                if (
                    not self.workers
                    and not self._pending_conns
                    and not self._unclaimed
                ):
                    if self.config.shard_listen:
                        # External workers may still join; wait a
                        # bounded grace period before giving up.
                        if no_worker_since is None:
                            no_worker_since = now
                        elif (
                            now - no_worker_since
                            > 2 * self.config.shard_lease_timeout_s
                        ):
                            self._quarantine_remaining()
                            return
                    else:
                        # Local-only service with no live worker and an
                        # exhausted respawn budget (_reap_unclaimed /
                        # _lose_worker would have spawned otherwise).
                        self._quarantine_remaining()
                        return
                else:
                    no_worker_since = None
        finally:
            self._shutdown()

    def _harvest_final_deltas(self) -> None:
        """Collect the post-shutdown ``obs-delta`` flushes.

        Each live worker reacts to the shutdown frame by flushing its
        remaining metric deltas and sending ``goodbye``; a goodbye (or
        a dead connection) releases that worker, so the deadline only
        bites when a worker is wedged.  Frames other than obs-delta
        are ignored -- results past this point are moot.
        """
        deadline = time.monotonic() + _OBS_HARVEST_S
        pending = {w.conn: w for w in self.workers.values()}
        while pending and time.monotonic() < deadline:
            for conn in wait(list(pending), timeout=_TICK_S):
                worker = pending[conn]
                try:
                    msg = recv_frame(conn)
                except (EOFError, OSError, ShardProtocolError):
                    del pending[conn]
                    continue
                kind = msg.get("kind")
                if kind == "obs-delta":
                    self.fleet.observe_clock(worker.pid, msg.get("mono"))
                    self.fleet.apply_delta(worker.worker_id, msg.get("delta"))
                elif kind == "goodbye":
                    del pending[conn]

    def _broadcast_drain(self) -> None:
        if self.drain_sent:
            return
        self.drain_sent = True
        self.queue.clear()
        self.waiting.clear()
        for worker in list(self.workers.values()):
            try:
                send_frame(worker.conn, {"kind": "drain"})
            except (OSError, ValueError):
                self._lose_worker(worker, reason="conn-lost")

    def _quarantine_remaining(self) -> None:
        """No worker can ever serve the rest of the grid: make every
        remaining open cell an explicit worker-lost hole."""
        remaining = [s for s in self.specs if self._cell_open(s)]
        for spec in remaining:
            self.report.errors.append(TaskError(
                kind="worker-lost",
                t_switch=spec.t_switch,
                seed=spec.seed,
                attempts=self.attempts.get(spec.index, 0),
                detail="no shard workers left and none can be respawned",
            ))
            self.reporter.task_quarantined()
            self.open_cells -= 1
        self.queue.clear()
        self.waiting.clear()

    def _shutdown(self) -> None:
        for worker in list(self.workers.values()):
            try:
                send_frame(worker.conn, {"kind": "shutdown"})
            except (OSError, ValueError):
                pass
        # The run loop exits the instant the last cell completes --
        # before the workers' lease-boundary obs-delta flush has been
        # read.  Workers answer the shutdown with one final flush and
        # a goodbye; harvest those frames (bounded) so the fleet
        # aggregate covers the whole grid, then tear down.
        if self.fleet is not None:
            self._harvest_final_deltas()
        for worker in list(self.workers.values()):
            self._close_quietly(worker.conn)
        for conn, _ in self._pending_conns:
            self._close_quietly(conn)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        processes = [
            w.process for w in self.workers.values() if w.process is not None
        ]
        processes += list(self._unclaimed.values())
        for process in processes:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self.workers.clear()
        # Finalize the liveness gauge: a drained sweep must export 0,
        # not the last nonzero head count (phantom live workers).
        self._metrics().gauge("repro_shard_workers_alive").set(0)
        self.reporter.set_workers(None)


def run_sharded(config, pending, report, journal, drain, rng, reporter,
                fleet=None):
    """Sharded leg of :func:`repro.experiments.resilience.execute`.

    Same contract as ``_run_pooled``: mutate *report* in place
    (outcomes, errors, retries), journal every completion, respect the
    drain flag.  The caller owns journal/resume/signal setup, so a
    sharded sweep resumes and drains exactly like a pooled one.

    *fleet* (a :class:`repro.obs.fleet.FleetAggregator`) enables the
    observability plane: workers ship metric deltas on the heartbeat
    cadence and the coordinator merges them (plus result-frame spans)
    into the aggregator.  Purely observational -- cell values are
    bit-identical with or without it.
    """
    coordinator = _Coordinator(
        config, pending, report, journal, drain, rng, reporter, fleet=fleet
    )
    coordinator.start()
    coordinator.run()
