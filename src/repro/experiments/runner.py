"""Sweep execution.

One *task* = one ``(t_switch, seed)`` pair, executed through the
unified engine layer (:mod:`repro.engine`): a counters-only
:class:`~repro.engine.spec.RunSpec` on the fused replay engine, which
fetches that pair's trace (from the content-addressed cache, else
generates it) and drives every protocol over it in a single pass (the
paper's common-random-numbers comparison -- all protocols see
identical schedules).  A *point* aggregates the tasks of one
``t_switch`` value; a *sweep* runs all points of a figure.

Parallelism is (point, seed)-granular: a figure with 7 points and 3
seeds exposes 21 independent tasks, so the pool scales past the number
of points and the slowest point no longer serializes its seeds.  The
pool is persistent across sweeps within a process (spawning workers
costs more than a small sweep), tasks stream back via
``imap_unordered``, and results are reassembled deterministically --
points in config order, runs seed-major then protocol -- so the output
is bit-identical to the serial path.  With ``SweepConfig.shards`` (or
``shard_listen``) set, dispatch instead goes through the sharded sweep
service (:mod:`repro.experiments.sharded`): shard leases to worker
processes over a wire protocol, heartbeat liveness and exactly-once
journaling -- same bit-identical results, fault-tolerant to whole
worker loss.

Protocol instances run in counters-only mode
(``log_checkpoints = False``): figure curves need nothing but counts,
and skipping the checkpoint log makes the replay several times faster
(see docs/simulation-model.md, "Performance architecture").

Every task also emits a :class:`repro.obs.telemetry.TaskTelemetry`
record (wall time, trace cache tier, event counts, worker pid,
per-protocol checkpoint counters), and ``SweepConfig.audit`` arms the
invariant audit of :mod:`repro.obs.audit` on each task -- see
docs/simulation-model.md, "Auditing & telemetry".

Execution is supervised by :mod:`repro.experiments.resilience`: tasks
run under per-task deadlines with retry/backoff, a broken pool is
rebuilt and its in-flight tasks re-dispatched, completed tasks can be
journaled for crash-safe resumption, and SIGINT/SIGTERM drain the
sweep into a partial result instead of losing it -- see
docs/resilience.md.
"""

from __future__ import annotations

import atexit
import csv
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Optional, Sequence

from repro.analysis.stats import SampleSummary, summarize
from repro.engine import (
    AuditObserver,
    RunSpec,
    StreamObserver,
    TelemetryObserver,
    TimingObserver,
    execute,
)
from repro.experiments.config import SweepConfig
from repro.obs.telemetry import TaskTelemetry, TelemetrySummary
from repro.obs.telemetry import summarize as summarize_telemetry
from repro.workload.config import WorkloadConfig


@dataclass(slots=True)
class RunOutcome:
    """Counts of one (seed, protocol) run at one point."""

    seed: int
    protocol: str
    n_total: int
    n_basic: int
    n_forced: int
    n_replaced: int
    n_sends: int
    piggyback_ints: int

    def as_row(self, t_switch: float) -> dict:
        """This run as one CSV row dict (see ``CSV_FIELDS``)."""
        return {
            "t_switch": t_switch,
            "seed": self.seed,
            "protocol": self.protocol,
            "n_total": self.n_total,
            "n_basic": self.n_basic,
            "n_forced": self.n_forced,
            "n_replaced": self.n_replaced,
            "n_sends": self.n_sends,
            "piggyback_ints": self.piggyback_ints,
        }


#: Column order of :meth:`SweepResult.to_csv` rows.
CSV_FIELDS = (
    "t_switch",
    "seed",
    "protocol",
    "n_total",
    "n_basic",
    "n_forced",
    "n_replaced",
    "n_sends",
    "piggyback_ints",
)


@dataclass(slots=True)
class PointResult:
    """All runs at one ``t_switch`` value."""

    t_switch: float
    runs: list[RunOutcome] = field(default_factory=list)
    #: One telemetry record per seed, in ``seeds`` order.
    telemetry: list[TaskTelemetry] = field(default_factory=list)

    def totals(self, protocol: str) -> list[int]:
        """N_tot of every run of *protocol* at this point."""
        return [r.n_total for r in self.runs if r.protocol == protocol]

    def summary(self, protocol: str) -> SampleSummary:
        """Multi-seed summary statistics for *protocol*."""
        return summarize([float(v) for v in self.totals(protocol)])

    def mean_total(self, protocol: str) -> float:
        """Mean N_tot over the seeds for *protocol*."""
        return self.summary(protocol).mean


@dataclass(slots=True)
class SweepResult:
    """A full figure sweep."""

    config: SweepConfig
    points: list[PointResult] = field(default_factory=list)
    #: Audit violations across the grid, (point, seed)-ordered;
    #: populated only when ``config.audit`` is set.
    violations: list = field(default_factory=list)
    #: Wall time of the whole sweep as seen by :func:`run_sweep`.
    sweep_wall_s: float = 0.0
    #: Quarantined tasks (terminal :class:`TaskError` records); each is
    #: an explicit hole in the grid rather than an aborted sweep.
    errors: list = field(default_factory=list)
    #: Tasks served from a resume journal instead of re-executed.
    resumed_tasks: int = 0
    #: Re-dispatches (retries) that happened across the sweep.
    task_retries: int = 0
    #: True when the sweep was drained early by SIGINT/SIGTERM; the
    #: points cover only the tasks that finished (plus resumed ones).
    interrupted: bool = False

    @property
    def telemetry(self) -> list[TaskTelemetry]:
        """All task telemetry records, (point, seed)-ordered."""
        return [rec for point in self.points for rec in point.telemetry]

    @property
    def n_holes(self) -> int:
        """Grid cells with no outcome (quarantined or not reached)."""
        expected = len(self.config.t_switch_values) * len(self.config.seeds)
        return expected - sum(len(p.telemetry) for p in self.points)

    @property
    def complete(self) -> bool:
        """True iff every (point, seed) cell produced a result."""
        return self.n_holes == 0 and not self.interrupted

    def telemetry_summary(self) -> TelemetrySummary:
        """Aggregate telemetry (busy time, utilization, cache tiers)."""
        return summarize_telemetry(
            self.telemetry,
            sweep_wall_s=self.sweep_wall_s,
            workers=max(1, self.config.workers),
            n_quarantined=len(self.errors),
            n_resumed=self.resumed_tasks,
        )

    def curve(self, protocol: str) -> list[tuple[float, float]]:
        """(t_switch, mean N_tot) series for one protocol."""
        return [(p.t_switch, p.mean_total(protocol)) for p in self.points]

    def protocols(self) -> Sequence[str]:
        """Protocol names this sweep evaluated."""
        return self.config.protocols

    def to_csv(self, path) -> None:
        """Write every run's raw counts as CSV (one row per
        (t_switch, seed, protocol)) for downstream plotting."""
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(CSV_FIELDS))
            writer.writeheader()
            for point in self.points:
                for run in point.runs:
                    writer.writerow(run.as_row(point.t_switch))


def _evaluate_task(
    base: WorkloadConfig,
    t_switch: float,
    seed: int,
    protocols: Sequence[str],
    use_cache: bool,
    cache_dir: Optional[str],
    audit: bool = False,
    trace_spans: bool = False,
    stream_path: Optional[str] = None,
    engine: str = "fused",
    run_id: Optional[str] = None,
) -> tuple[float, int, list[RunOutcome], TaskTelemetry, list]:
    """Worker body: one (point, seed) pair, all protocols, one replay
    pass over one trace -- routed through the execution engine
    (:mod:`repro.engine`) with the task's telemetry and -- in audit
    mode -- the invariant audit attached as observers.  ``engine``
    picks the replay strategy (fused / vectorized / auto); results are
    bit-identical either way.

    ``trace_spans`` attaches a :class:`~repro.engine.TimingObserver`
    and ships its phase spans home on the telemetry record;
    ``stream_path`` appends one JSONL line per protocol outcome there
    as the run progresses (append-mode, so parallel workers interleave
    whole lines)."""
    cfg = base.with_(t_switch=t_switch, seed=seed)
    telemetry_obs = TelemetryObserver(t_switch=t_switch, seed=seed)
    # The audit observer goes first so the telemetry record sees the
    # final violation count on run end.
    observers = (telemetry_obs,)
    if audit:
        observers = (AuditObserver(t_switch=t_switch),) + observers
    timing = None
    if trace_spans:
        # First in the stack: the engine discovers the tracer before
        # any phase opens, and other observers' on_run_end work is
        # itself timed under observer:* spans.
        timing = TimingObserver()
        observers = (timing,) + observers
    stream = None
    if stream_path:
        stream = StreamObserver(
            stream_path, labels={"t_switch": t_switch, "seed": seed}
        )
        observers = observers + (stream,)
    try:
        result = execute(
            RunSpec(
                protocols=tuple(protocols),
                workload=cfg,
                engine=engine,
                counters_only=True,  # counters are all a sweep needs
                audit=audit,
                seed=seed,
                use_cache=use_cache,
                cache_dir=cache_dir,
                observers=observers,
                run_id=run_id,
            )
        )
    finally:
        if stream is not None:
            stream.close()
    if timing is not None:
        telemetry_obs.record.spans = timing.tracer.as_dicts()
    runs = [
        RunOutcome(
            seed=seed,
            protocol=o.name,
            n_total=o.metrics.stats.n_total,
            n_basic=o.metrics.stats.n_basic,
            n_forced=o.metrics.stats.n_forced,
            n_replaced=o.metrics.stats.n_replaced,
            n_sends=o.metrics.n_sends,
            piggyback_ints=o.metrics.piggyback_ints_total,
        )
        for o in result.outcomes
    ]
    return t_switch, seed, runs, telemetry_obs.record, list(result.violations)


#: Persistent worker pool, reused across sweeps in this process.
_pool: Optional[ProcessPoolExecutor] = None
_pool_size = 0


def _pool_is_broken(pool: ProcessPoolExecutor) -> bool:
    """True when *pool* can no longer accept work (a worker died or it
    was shut down) and must be replaced, not reused."""
    return bool(getattr(pool, "_broken", False)) or bool(
        getattr(pool, "_shutdown_thread", None)
    )


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """Return the process pool, recreating it when the width changes or
    the cached executor has broken (a dead worker poisons a
    ``ProcessPoolExecutor`` permanently -- reusing it would fail every
    subsequent sweep)."""
    global _pool, _pool_size
    if _pool is not None and (_pool_size != workers or _pool_is_broken(_pool)):
        shutdown_pool()
    if _pool is None:
        _pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        )
        _pool_size = workers
    return _pool


def shutdown_pool() -> None:
    """Terminate the persistent sweep pool (no-op when none exists)."""
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(shutdown_pool)


def _assemble(
    config: SweepConfig,
    outcomes: Sequence[tuple[float, int, list[RunOutcome], TaskTelemetry, list]],
) -> SweepResult:
    """Deterministic reassembly: points follow ``t_switch_values``
    order and each point's runs are seed-major in ``seeds`` order,
    regardless of task completion order.  Telemetry and audit
    violations follow the same (point, seed) order.  ``None`` outcomes
    (quarantined tasks, interrupted sweeps) are holes: the cell is
    simply absent from the point."""
    by_key = {
        (t, seed): (runs, telemetry, violations)
        for t, seed, runs, telemetry, violations in (
            o for o in outcomes if o is not None
        )
    }
    result = SweepResult(config=config)
    for t in config.t_switch_values:
        point = PointResult(t_switch=t)
        for seed in config.seeds:
            cell = by_key.get((t, seed))
            if cell is None:
                continue  # explicit hole
            runs, telemetry, violations = cell
            point.runs.extend(runs)
            point.telemetry.append(telemetry)
            result.violations.extend(violations)
        result.points.append(point)
    return result


def _tasks(config: SweepConfig) -> list[tuple]:
    """The sweep's (point, seed) task grid, point-major."""
    # A trace-file destination implies span recording.
    trace_spans = bool(config.trace_spans or config.trace_path)
    return [
        (
            config.base,
            t,
            seed,
            tuple(config.protocols),
            config.use_cache,
            config.cache_dir,
            config.audit,
            trace_spans,
            config.stream_path,
            config.engine,
            config.run_id,
        )
        for t in config.t_switch_values
        for seed in config.seeds
    ]


def run_point(config: SweepConfig, t_switch: float) -> PointResult:
    """Evaluate a single ``t_switch`` point of *config* (serially)."""
    config.validate()
    point = PointResult(t_switch=t_switch)
    for seed in config.seeds:
        _, _, runs, telemetry, _ = _evaluate_task(
            config.base,
            t_switch,
            seed,
            tuple(config.protocols),
            config.use_cache,
            config.cache_dir,
            config.audit,
            engine=config.engine,
        )
        point.runs.extend(runs)
        point.telemetry.append(telemetry)
    return point


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the whole sweep; uses the persistent process pool when
    ``workers > 1``, fanning out over (point, seed) tasks.

    Execution goes through the resilience supervisor
    (:func:`repro.experiments.resilience.execute`): per-task deadlines
    and retries, pool healing, journaling/resumption and graceful
    signal draining all apply according to the config's knobs.  A task
    that exhausts its retries becomes a hole in the result (see
    :attr:`SweepResult.errors`), never an aborted sweep.

    Telemetry is collected for every task; when
    ``config.telemetry_path`` is set the records (plus an aggregate
    summary line) are written there as JSONL.  In audit mode the
    result additionally carries every invariant violation found.

    When any fleet-observability knob is set (``obs_fleet`` /
    ``prom_path`` / ``prom_gateway`` / ``otlp_path``) a
    :class:`repro.obs.fleet.FleetPlane` rides the sweep: shard workers
    ship metric deltas back, the merged registry refreshes the
    Prometheus targets while the sweep runs, and one OTLP-JSON
    artifact (metrics + skew-aligned spans) lands at the end.  The
    plane observes; results are bit-identical with it on or off."""
    from repro.experiments.resilience import execute, sweep_config_hash

    config.validate()
    plane = None
    if config.fleet_enabled:
        from repro.obs.fleet import FleetPlane

        if not config.run_id:
            config.run_id = "sweep-" + sweep_config_hash(config)[:12]
        plane = FleetPlane(
            config.run_id,
            prom_path=config.prom_path,
            prom_gateway=config.prom_gateway,
            otlp_path=config.otlp_path,
            refresh_s=config.obs_refresh_s,
        )
        plane.start()
    started = time.perf_counter()
    tasks = _tasks(config)
    try:
        report = execute(config, tasks, fleet=plane.aggregator if plane else None)
    except BaseException:
        if plane is not None:
            plane.stop_refresh()
        raise
    result = _assemble(config, report.outcomes)
    result.errors = report.errors
    result.resumed_tasks = report.resumed
    result.task_retries = report.retries
    result.interrupted = report.interrupted
    result.sweep_wall_s = time.perf_counter() - started
    if config.telemetry_path:
        from repro.obs.telemetry import write_jsonl

        write_jsonl(
            result.telemetry,
            config.telemetry_path,
            summary=result.telemetry_summary(),
        )
    spans = [s for rec in result.telemetry for s in rec.spans]
    if config.trace_path:
        from repro.obs.tracing import write_chrome_trace

        # Worker spans rode home on the telemetry records; merged they
        # form the sweep's full timeline (pids keep workers apart).
        # With the fleet plane on they are additionally clock-skew
        # aligned onto the coordinator's monotonic timeline.
        write_chrome_trace(
            config.trace_path,
            plane.aggregator.align(spans) if plane is not None else spans,
        )
    if plane is not None:
        # finalize aligns internally -- hand it the raw spans.
        plane.finalize(spans=spans)
    return result
