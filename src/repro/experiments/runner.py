"""Sweep execution.

One *point* = one ``t_switch`` value: generate one trace per seed, then
replay every protocol over each trace (the paper's common-random-numbers
comparison -- all protocols see identical schedules).  A *sweep* runs
all points of a figure, optionally fanned out over a process pool
(trace generation dominates the cost and parallelises embarrassingly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Sequence

from repro.analysis.stats import SampleSummary, summarize
from repro.core.replay import replay
from repro.experiments.config import SweepConfig
from repro.protocols.base import registry
from repro.workload.config import WorkloadConfig
from repro.workload.driver import generate_trace


@dataclass(slots=True)
class RunOutcome:
    """Counts of one (seed, protocol) run at one point."""

    seed: int
    protocol: str
    n_total: int
    n_basic: int
    n_forced: int
    n_replaced: int
    n_sends: int
    piggyback_ints: int


@dataclass(slots=True)
class PointResult:
    """All runs at one ``t_switch`` value."""

    t_switch: float
    runs: list[RunOutcome] = field(default_factory=list)

    def totals(self, protocol: str) -> list[int]:
        """N_tot of every run of *protocol* at this point."""
        return [r.n_total for r in self.runs if r.protocol == protocol]

    def summary(self, protocol: str) -> SampleSummary:
        """Multi-seed summary statistics for *protocol*."""
        return summarize([float(v) for v in self.totals(protocol)])

    def mean_total(self, protocol: str) -> float:
        """Mean N_tot over the seeds for *protocol*."""
        return self.summary(protocol).mean


@dataclass(slots=True)
class SweepResult:
    """A full figure sweep."""

    config: SweepConfig
    points: list[PointResult] = field(default_factory=list)

    def curve(self, protocol: str) -> list[tuple[float, float]]:
        """(t_switch, mean N_tot) series for one protocol."""
        return [(p.t_switch, p.mean_total(protocol)) for p in self.points]

    def protocols(self) -> Sequence[str]:
        """Protocol names this sweep evaluated."""
        return self.config.protocols

    def to_csv(self, path) -> None:
        """Write every run's raw counts as CSV (one row per
        (t_switch, seed, protocol)) for downstream plotting."""
        import csv

        fields = [
            "t_switch",
            "seed",
            "protocol",
            "n_total",
            "n_basic",
            "n_forced",
            "n_replaced",
            "n_sends",
            "piggyback_ints",
        ]
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields)
            writer.writeheader()
            for point in self.points:
                for run in point.runs:
                    writer.writerow(
                        {
                            "t_switch": point.t_switch,
                            "seed": run.seed,
                            "protocol": run.protocol,
                            "n_total": run.n_total,
                            "n_basic": run.n_basic,
                            "n_forced": run.n_forced,
                            "n_replaced": run.n_replaced,
                            "n_sends": run.n_sends,
                            "piggyback_ints": run.piggyback_ints,
                        }
                    )


def _evaluate_point(
    base: WorkloadConfig,
    t_switch: float,
    seeds: Sequence[int],
    protocols: Sequence[str],
) -> PointResult:
    """Worker body: one point, all seeds, all protocols."""
    point = PointResult(t_switch=t_switch)
    for seed in seeds:
        cfg = base.with_(t_switch=t_switch, seed=seed)
        trace = generate_trace(cfg)
        for name in protocols:
            protocol = registry[name](cfg.n_hosts, cfg.n_mss)
            result = replay(trace, protocol, seed=seed)
            stats = result.metrics.stats
            point.runs.append(
                RunOutcome(
                    seed=seed,
                    protocol=name,
                    n_total=stats.n_total,
                    n_basic=stats.n_basic,
                    n_forced=stats.n_forced,
                    n_replaced=stats.n_replaced,
                    n_sends=result.metrics.n_sends,
                    piggyback_ints=result.metrics.piggyback_ints_total,
                )
            )
    return point


def _pool_task(args: tuple) -> PointResult:  # pragma: no cover - subprocess
    return _evaluate_point(*args)


def run_point(
    config: SweepConfig, t_switch: float
) -> PointResult:
    """Evaluate a single ``t_switch`` point of *config*."""
    config.validate()
    return _evaluate_point(config.base, t_switch, config.seeds, config.protocols)


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the whole sweep; uses a process pool when ``workers > 1``."""
    config.validate()
    tasks = [
        (config.base, t, tuple(config.seeds), tuple(config.protocols))
        for t in config.t_switch_values
    ]
    if config.workers > 1:
        with get_context("spawn").Pool(config.workers) as pool:
            points = pool.map(_pool_task, tasks)
    else:
        points = [_evaluate_point(*task) for task in tasks]
    return SweepResult(config=config, points=list(points))
