"""Sweep execution.

One *task* = one ``(t_switch, seed)`` pair: fetch that pair's trace
(from the content-addressed cache, else generate it), then drive every
protocol over it in a single fused replay pass (the paper's
common-random-numbers comparison -- all protocols see identical
schedules).  A *point* aggregates the tasks of one ``t_switch`` value;
a *sweep* runs all points of a figure.

Parallelism is (point, seed)-granular: a figure with 7 points and 3
seeds exposes 21 independent tasks, so the pool scales past the number
of points and the slowest point no longer serializes its seeds.  The
pool is persistent across sweeps within a process (spawning workers
costs more than a small sweep), tasks stream back via
``imap_unordered``, and results are reassembled deterministically --
points in config order, runs seed-major then protocol -- so the output
is bit-identical to the serial path.

Protocol instances run in counters-only mode
(``log_checkpoints = False``): figure curves need nothing but counts,
and skipping the checkpoint log makes the replay several times faster
(see docs/simulation-model.md, "Performance architecture").
"""

from __future__ import annotations

import atexit
import csv
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Optional, Sequence

from repro.analysis.stats import SampleSummary, summarize
from repro.core.replay import replay_fused
from repro.experiments.config import SweepConfig
from repro.protocols.base import registry
from repro.workload.cache import shared_cache
from repro.workload.config import WorkloadConfig
from repro.workload import driver as _driver


@dataclass(slots=True)
class RunOutcome:
    """Counts of one (seed, protocol) run at one point."""

    seed: int
    protocol: str
    n_total: int
    n_basic: int
    n_forced: int
    n_replaced: int
    n_sends: int
    piggyback_ints: int

    def as_row(self, t_switch: float) -> dict:
        """This run as one CSV row dict (see ``CSV_FIELDS``)."""
        return {
            "t_switch": t_switch,
            "seed": self.seed,
            "protocol": self.protocol,
            "n_total": self.n_total,
            "n_basic": self.n_basic,
            "n_forced": self.n_forced,
            "n_replaced": self.n_replaced,
            "n_sends": self.n_sends,
            "piggyback_ints": self.piggyback_ints,
        }


#: Column order of :meth:`SweepResult.to_csv` rows.
CSV_FIELDS = (
    "t_switch",
    "seed",
    "protocol",
    "n_total",
    "n_basic",
    "n_forced",
    "n_replaced",
    "n_sends",
    "piggyback_ints",
)


@dataclass(slots=True)
class PointResult:
    """All runs at one ``t_switch`` value."""

    t_switch: float
    runs: list[RunOutcome] = field(default_factory=list)

    def totals(self, protocol: str) -> list[int]:
        """N_tot of every run of *protocol* at this point."""
        return [r.n_total for r in self.runs if r.protocol == protocol]

    def summary(self, protocol: str) -> SampleSummary:
        """Multi-seed summary statistics for *protocol*."""
        return summarize([float(v) for v in self.totals(protocol)])

    def mean_total(self, protocol: str) -> float:
        """Mean N_tot over the seeds for *protocol*."""
        return self.summary(protocol).mean


@dataclass(slots=True)
class SweepResult:
    """A full figure sweep."""

    config: SweepConfig
    points: list[PointResult] = field(default_factory=list)

    def curve(self, protocol: str) -> list[tuple[float, float]]:
        """(t_switch, mean N_tot) series for one protocol."""
        return [(p.t_switch, p.mean_total(protocol)) for p in self.points]

    def protocols(self) -> Sequence[str]:
        """Protocol names this sweep evaluated."""
        return self.config.protocols

    def to_csv(self, path) -> None:
        """Write every run's raw counts as CSV (one row per
        (t_switch, seed, protocol)) for downstream plotting."""
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(CSV_FIELDS))
            writer.writeheader()
            for point in self.points:
                for run in point.runs:
                    writer.writerow(run.as_row(point.t_switch))


def _evaluate_task(
    base: WorkloadConfig,
    t_switch: float,
    seed: int,
    protocols: Sequence[str],
    use_cache: bool,
    cache_dir: Optional[str],
) -> tuple[float, int, list[RunOutcome]]:
    """Worker body: one (point, seed) pair, all protocols, one fused
    replay pass over one trace."""
    cfg = base.with_(t_switch=t_switch, seed=seed)
    if use_cache:
        trace = shared_cache(cache_dir).get_or_generate(cfg)
    else:
        # Through the module so monkeypatched generators are observed.
        trace = _driver.generate_trace(cfg)
    instances = []
    for name in protocols:
        protocol = registry[name](cfg.n_hosts, cfg.n_mss)
        protocol.log_checkpoints = False  # counters are all a sweep needs
        instances.append(protocol)
    runs = []
    for name, result in zip(protocols, replay_fused(trace, instances, seed=seed)):
        stats = result.metrics.stats
        runs.append(
            RunOutcome(
                seed=seed,
                protocol=name,
                n_total=stats.n_total,
                n_basic=stats.n_basic,
                n_forced=stats.n_forced,
                n_replaced=stats.n_replaced,
                n_sends=result.metrics.n_sends,
                piggyback_ints=result.metrics.piggyback_ints_total,
            )
        )
    return t_switch, seed, runs


def _pool_task(args: tuple):  # pragma: no cover - subprocess
    """Picklable pool entry: run one task, echo its position back."""
    index, task = args
    return index, _evaluate_task(*task)


#: Persistent worker pool, reused across sweeps in this process.
_pool = None
_pool_size = 0


def _get_pool(workers: int):
    """Return the process pool, recreating it when the width changes."""
    global _pool, _pool_size
    if _pool is not None and _pool_size != workers:
        shutdown_pool()
    if _pool is None:
        _pool = get_context("spawn").Pool(workers)
        _pool_size = workers
    return _pool


def shutdown_pool() -> None:
    """Terminate the persistent sweep pool (no-op when none exists)."""
    global _pool, _pool_size
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_size = 0


atexit.register(shutdown_pool)


def _assemble(
    config: SweepConfig,
    outcomes: Sequence[tuple[float, int, list[RunOutcome]]],
) -> SweepResult:
    """Deterministic reassembly: points follow ``t_switch_values``
    order and each point's runs are seed-major in ``seeds`` order,
    regardless of task completion order."""
    by_key = {(t, seed): runs for t, seed, runs in outcomes}
    points = []
    for t in config.t_switch_values:
        point = PointResult(t_switch=t)
        for seed in config.seeds:
            point.runs.extend(by_key[(t, seed)])
        points.append(point)
    return SweepResult(config=config, points=points)


def _tasks(config: SweepConfig) -> list[tuple]:
    """The sweep's (point, seed) task grid, point-major."""
    return [
        (
            config.base,
            t,
            seed,
            tuple(config.protocols),
            config.use_cache,
            config.cache_dir,
        )
        for t in config.t_switch_values
        for seed in config.seeds
    ]


def run_point(config: SweepConfig, t_switch: float) -> PointResult:
    """Evaluate a single ``t_switch`` point of *config* (serially)."""
    config.validate()
    point = PointResult(t_switch=t_switch)
    for seed in config.seeds:
        _, _, runs = _evaluate_task(
            config.base,
            t_switch,
            seed,
            tuple(config.protocols),
            config.use_cache,
            config.cache_dir,
        )
        point.runs.extend(runs)
    return point


def run_sweep(config: SweepConfig) -> SweepResult:
    """Run the whole sweep; uses the persistent process pool when
    ``workers > 1``, fanning out over (point, seed) tasks."""
    config.validate()
    tasks = _tasks(config)
    if config.workers > 1:
        pool = _get_pool(config.workers)
        outcomes = [None] * len(tasks)
        for index, outcome in pool.imap_unordered(
            _pool_task, list(enumerate(tasks))
        ):
            outcomes[index] = outcome
    else:
        outcomes = [_evaluate_task(*task) for task in tasks]
    return _assemble(config, outcomes)
