"""Shape validation: the paper's qualitative claims, checked mechanically.

The reproduction cannot match absolute numbers (different horizon, a
from-scratch simulator), but the paper's conclusions are ordinal and
must hold:

1. index-based protocols (BCS, QBC) take fewer checkpoints than TP
   everywhere, with the gain growing in ``T_switch`` (up to ~90%);
2. QBC <= BCS in mean ``N_tot`` at every point;
3. the QBC-over-BCS gain is larger with disconnections
   (``P_switch`` = 0.8 vs 1.0) and in heterogeneous environments;
4. multi-seed runs agree closely (paper: within 4%).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.metrics import gain_percent
from repro.experiments.runner import SweepResult


@dataclass(slots=True)
class ValidationReport:
    """Outcome of the claim checks on one or more sweeps."""

    passed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every claim check passed."""
        return not self.failed

    def check(self, name: str, condition: bool) -> None:
        """Record one named claim check."""
        (self.passed if condition else self.failed).append(name)

    def __str__(self) -> str:
        lines = [f"[PASS] {name}" for name in self.passed]
        lines += [f"[FAIL] {name}" for name in self.failed]
        return "\n".join(lines)


def validate_figure(
    result: SweepResult,
    spread_tolerance: float = 0.25,
) -> ValidationReport:
    """Per-figure claims (1, 2, 4).

    ``spread_tolerance`` is looser than the paper's 4% by default
    because validation sweeps use shorter horizons with fewer events;
    the paper-scale bench checks the 4% figure itself.
    """
    report = ValidationReport()
    protocols = set(result.protocols())
    needed = {"TP", "BCS", "QBC"}
    if not needed <= protocols:
        report.check(f"sweep evaluates {needed}", False)
        return report

    for point in result.points:
        t = point.t_switch
        tp = point.mean_total("TP")
        bcs = point.mean_total("BCS")
        qbc = point.mean_total("QBC")
        report.check(
            f"T={t:g}: index-based beat TP (TP={tp:.0f} BCS={bcs:.0f})",
            bcs < tp and qbc < tp,
        )
        report.check(
            f"T={t:g}: QBC <= BCS (QBC={qbc:.0f} BCS={bcs:.0f})",
            qbc <= bcs,
        )
        for name in ("TP", "BCS", "QBC"):
            summary = point.summary(name)
            if summary.mean < 100.0:
                # Relative spread is meaningless for tiny counts (a
                # handful of basic checkpoints at short horizons); the
                # paper-scale bench checks the 4% agreement properly.
                continue
            report.check(
                f"T={t:g}: {name} seeds agree ({100 * summary.relative_spread:.1f}%)",
                summary.relative_spread <= spread_tolerance,
            )

    # The index-based gain grows with T_switch and gets large at the top.
    first, last = result.points[0], result.points[-1]
    gain_first = gain_percent(first.mean_total("TP"), first.mean_total("BCS"))
    gain_last = gain_percent(last.mean_total("TP"), last.mean_total("BCS"))
    report.check(
        f"index gain grows with T_switch ({gain_first:.0f}% -> {gain_last:.0f}%)",
        gain_last > gain_first,
    )
    report.check(
        f"index gain large at T_switch={last.t_switch:g} ({gain_last:.0f}%, "
        "paper: up to ~90%)",
        gain_last >= 60.0,
    )
    return report


def validate_audit(result: SweepResult) -> ValidationReport:
    """Audit-mode claims: the sweep ran clean and telemetry is complete.

    Checks that an audited sweep produced zero invariant violations
    (orphan-free recovery lines, fused-vs-reference equivalence, index
    monotonicity -- see :mod:`repro.obs.audit`) and that every
    (point, seed) task reported a telemetry record.
    """
    report = ValidationReport()
    n_tasks = len(result.config.t_switch_values) * len(result.config.seeds)
    violations = result.violations
    report.check(
        f"audit found no invariant violations ({len(violations)} found)",
        not violations,
    )
    records = result.telemetry
    report.check(
        f"telemetry covers every (point, seed) task "
        f"({len(records)}/{n_tasks})",
        len(records) == n_tasks,
    )
    report.check(
        "telemetry records carry positive wall times",
        all(r.wall_time_s > 0 for r in records),
    )
    return report


def qbc_max_gain(result: SweepResult) -> float:
    """Largest QBC-over-BCS gain (%) across a sweep's points.

    The paper quotes its gains at the top of the T_switch axis; in this
    reproduction the gain peaks at small/medium T_switch instead (see
    EXPERIMENTS.md), so cross-figure comparisons use the sweep maximum.
    """
    return max(
        gain_percent(p.mean_total("BCS"), p.mean_total("QBC"))
        for p in result.points
    )


def validate_paper_claims(
    no_disconnect: SweepResult,
    with_disconnect: SweepResult,
    heterogeneous_with_disconnect: SweepResult | None = None,
) -> ValidationReport:
    """Cross-figure claim 3: disconnections and heterogeneity amplify
    QBC's advantage over BCS (compare e.g. figures 1, 2, and 6)."""
    report = ValidationReport()
    g_no = qbc_max_gain(no_disconnect)
    g_yes = qbc_max_gain(with_disconnect)
    report.check(
        f"disconnections do not shrink the max QBC gain "
        f"({g_no:.1f}% -> {g_yes:.1f}%)",
        g_yes >= 0.8 * g_no,
    )
    if heterogeneous_with_disconnect is not None:
        g_het = qbc_max_gain(heterogeneous_with_disconnect)
        report.check(
            f"heterogeneity amplifies the max QBC gain ({g_yes:.1f}% -> "
            f"{g_het:.1f}%)",
            g_het >= g_yes,
        )
    return report
