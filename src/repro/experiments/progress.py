"""Live sweep progress: rate, ETA and a heartbeat record stream.

A big Monte-Carlo sweep is silent for minutes; this module is the
operator's window into it.  The sweep supervisor
(:func:`repro.experiments.resilience.execute`) feeds one
:class:`ProgressReporter` from its completion paths -- task done, task
resumed from journal, task retried, task quarantined -- and the
reporter turns that into:

* a **status line** (``12/21 57% | 3.2 tasks/s | eta 3s | cache 8/12
  | retries 1``) rewritten in place on a TTY and emitted as periodic
  plain lines otherwise, so both an interactive terminal and a CI log
  stay readable;
* **heartbeat records** -- ``{"kind": "heartbeat", ...}`` JSONL lines
  appended to an optional path on a fixed cadence, the machine-readable
  twin of the status line that ``repro tail`` and dashboards consume;
* sweep-level **metrics** (``repro_sweep_tasks_total{status=...}``,
  ``repro_sweep_retries_total``) in the process-local registry
  (:mod:`repro.obs.metrics`).

Whether the status line renders at all resolves by precedence:
an explicit ``enabled`` flag (the CLI's ``--progress`` /
``--no-progress``), else the ``REPRO_PROGRESS`` environment variable,
else whether the output stream is a TTY.  Heartbeats are independent
of that resolution -- a path given is always written.

The reporter is display-only by contract: it never touches task
results, so a sweep with progress on is value-identical to one with it
off (asserted in ``tests/experiments/test_progress.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Optional

__all__ = ["ProgressReporter", "PROGRESS_ENV", "progress_enabled"]

#: Environment override for status-line rendering: falsy values
#: ("0", "false", "no", "off") disable, anything else enables.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Values of :data:`PROGRESS_ENV` that mean "off".
_FALSY = {"0", "false", "no", "off", ""}

#: Minimum seconds between in-place TTY redraws (don't spam the pty).
_RENDER_EVERY_S = 0.2

#: Seconds between plain-line updates on non-TTY streams and between
#: heartbeat records.
_HEARTBEAT_EVERY_S = 5.0


def progress_enabled(
    enabled: Optional[bool] = None, stream=None
) -> bool:
    """Resolve whether the status line should render.

    Precedence: explicit *enabled* flag, then :data:`PROGRESS_ENV`,
    then ``stream.isatty()``.
    """
    if enabled is not None:
        return enabled
    env = os.environ.get(PROGRESS_ENV)
    if env is not None:
        return env.strip().lower() not in _FALSY
    if stream is None:
        stream = sys.stderr
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError):
        return False


class ProgressReporter:
    """Aggregate sweep completion events into a live status line,
    heartbeat records and sweep metrics.

    Parameters
    ----------
    total:
        Number of tasks in the grid (denominator of the status line).
    stream:
        Where the status line goes (default ``sys.stderr``).
    enabled:
        Explicit on/off for the status line; ``None`` defers to
        :func:`progress_enabled`.
    heartbeat_path:
        When set, one ``{"kind": "heartbeat", ...}`` JSONL line is
        appended there every ``heartbeat_every_s`` seconds (and once
        at :meth:`close`), independent of the status-line switch.
    label:
        Prefix of the status line (default ``"sweep"``).
    """

    def __init__(
        self,
        total: int,
        stream=None,
        enabled: Optional[bool] = None,
        heartbeat_path=None,
        heartbeat_every_s: float = _HEARTBEAT_EVERY_S,
        label: str = "sweep",
    ):
        self.total = int(total)
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = progress_enabled(enabled, self.stream)
        self.label = label
        self.heartbeat_path = (
            os.fspath(heartbeat_path) if heartbeat_path is not None else None
        )
        self.heartbeat_every_s = heartbeat_every_s
        self._heartbeat_fh = None
        # Completion accounting.
        self.done = 0  # every terminal outcome (executed/resumed/hole)
        self.executed = 0  # tasks that actually ran to success
        self.resumed = 0
        self.quarantined = 0
        self.retries = 0
        self.cache_hits = 0
        # Sharded dispatch only: live worker count (None = not sharded).
        self.workers_alive: Optional[int] = None
        self._started = time.monotonic()
        self._last_render = 0.0
        self._last_heartbeat = time.monotonic()
        self._line_width = 0
        self._tty = self._stream_isatty()
        self._closed = False

    def _stream_isatty(self) -> bool:
        try:
            return bool(self.stream.isatty())
        except (AttributeError, ValueError):
            return False

    # -- event intake ---------------------------------------------------
    def task_done(self, telemetry=None, resumed: bool = False) -> None:
        """One task reached a successful terminal state."""
        self.done += 1
        if resumed:
            self.resumed += 1
        else:
            self.executed += 1
            if telemetry is not None and getattr(
                telemetry, "cache_hit", False
            ):
                self.cache_hits += 1
        self._count("resumed" if resumed else "done")
        self._tick()

    def task_retry(self) -> None:
        """One failed attempt was re-dispatched."""
        self.retries += 1
        from repro.obs.metrics import registry

        registry().counter("repro_sweep_retries_total").inc()
        self._tick()

    def task_quarantined(self) -> None:
        """One task exhausted its retries and became a grid hole."""
        self.done += 1
        self.quarantined += 1
        self._count("quarantined")
        self._tick()

    def set_workers(self, alive: Optional[int]) -> None:
        """Sharded dispatch: how many shard workers are live right now
        (shown on the status line and in heartbeat records)."""
        if alive != self.workers_alive:
            self.workers_alive = alive
            self._tick()

    @staticmethod
    def _count(status: str) -> None:
        from repro.obs.metrics import registry

        registry().counter(
            "repro_sweep_tasks_total", status=status
        ).inc()

    # -- derived numbers ------------------------------------------------
    def elapsed_s(self) -> float:
        return time.monotonic() - self._started

    def rate_per_s(self) -> float:
        """Executed tasks per second (journal-resumed cells are free
        and would inflate the ETA if counted)."""
        elapsed = self.elapsed_s()
        return self.executed / elapsed if elapsed > 0 else 0.0

    def eta_s(self) -> Optional[float]:
        rate = self.rate_per_s()
        remaining = self.total - self.done
        if rate <= 0 or remaining <= 0:
            return 0.0 if remaining <= 0 else None
        return remaining / rate

    # -- rendering ------------------------------------------------------
    def status_line(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        parts = [
            f"{self.label} {self.done}/{self.total} {pct:3.0f}%",
            f"{self.rate_per_s():.2f} tasks/s",
        ]
        eta = self.eta_s()
        if eta is not None:
            parts.append(f"eta {_fmt_duration(eta)}")
        if self.executed:
            parts.append(f"cache {self.cache_hits}/{self.executed}")
        if self.resumed:
            parts.append(f"resumed {self.resumed}")
        if self.retries:
            parts.append(f"retries {self.retries}")
        if self.quarantined:
            parts.append(f"quarantined {self.quarantined}")
        if self.workers_alive is not None:
            parts.append(f"workers {self.workers_alive}")
        return " | ".join(parts)

    def _tick(self) -> None:
        """Render / heartbeat if their cadences are due."""
        now = time.monotonic()
        if self.enabled:
            due = (
                _RENDER_EVERY_S
                if self._tty
                else self.heartbeat_every_s
            )
            if now - self._last_render >= due or self.done >= self.total:
                self._render()
                self._last_render = now
        if (
            self.heartbeat_path is not None
            and now - self._last_heartbeat >= self.heartbeat_every_s
        ):
            self._write_heartbeat()
            self._last_heartbeat = now

    def _render(self) -> None:
        line = self.status_line()
        try:
            if self._tty:
                # Rewrite in place, blank-padding the previous line.
                pad = max(0, self._line_width - len(line))
                self.stream.write("\r" + line + " " * pad)
                self._line_width = len(line)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            self.enabled = False  # stream gone: stop rendering

    # -- heartbeats -----------------------------------------------------
    def heartbeat_record(self) -> dict[str, Any]:
        eta = self.eta_s()
        return {
            "kind": "heartbeat",
            "ts": time.time(),
            "done": self.done,
            "total": self.total,
            "executed": self.executed,
            "resumed": self.resumed,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "elapsed_s": self.elapsed_s(),
            "rate_per_s": self.rate_per_s(),
            "eta_s": eta,
            "workers_alive": self.workers_alive,
        }

    def _write_heartbeat(self) -> None:
        if self._heartbeat_fh is None:
            parent = os.path.dirname(self.heartbeat_path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._heartbeat_fh = open(self.heartbeat_path, "a")
        self._heartbeat_fh.write(
            json.dumps(self.heartbeat_record(), sort_keys=True) + "\n"
        )
        self._heartbeat_fh.flush()

    # -- teardown -------------------------------------------------------
    def close(self) -> None:
        """Final render + final heartbeat; idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.enabled:
            self._render()
            if self._tty:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):
                    pass
        if self.heartbeat_path is not None:
            try:
                self._write_heartbeat()
            except OSError:
                pass
        if self._heartbeat_fh is not None:
            self._heartbeat_fh.close()
            self._heartbeat_fh = None


def _fmt_duration(seconds: float) -> str:
    """Compact human duration: 42s, 3m10s, 1h02m."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
