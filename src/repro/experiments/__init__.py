"""Experiment harness: the paper's Section 5 performance study.

* :mod:`repro.experiments.config` -- sweep configuration.
* :mod:`repro.experiments.runner` -- single points and full sweeps,
  optionally fanned out over a process pool.
* :mod:`repro.experiments.figures` -- one entry per paper figure.
* :mod:`repro.experiments.report` -- paper-style tables, gains, plots.
* :mod:`repro.experiments.resilience` -- fault-tolerant execution:
  per-task supervision, pool healing, the sweep journal and resumption.
* :mod:`repro.experiments.sharded` -- multi-process sharded dispatch:
  shard leases, heartbeat liveness, reassignment on worker loss.
* :mod:`repro.experiments.validation` -- the paper's qualitative claims
  checked against measured sweeps.
"""

from repro.experiments.config import SweepConfig
from repro.experiments.figures import FIGURE_PARAMS, run_figure
from repro.experiments.report import figure_report, gains_table, points_table
from repro.experiments.resilience import (
    JournalLocked,
    SweepJournal,
    TaskError,
    sweep_config_hash,
)
from repro.experiments.runner import (
    PointResult,
    SweepResult,
    run_point,
    run_sweep,
)
from repro.experiments.validation import (
    validate_audit,
    validate_figure,
    validate_paper_claims,
)

__all__ = [
    "FIGURE_PARAMS",
    "JournalLocked",
    "PointResult",
    "SweepConfig",
    "SweepJournal",
    "SweepResult",
    "TaskError",
    "figure_report",
    "gains_table",
    "points_table",
    "run_figure",
    "run_point",
    "run_sweep",
    "sweep_config_hash",
    "validate_audit",
    "validate_figure",
    "validate_paper_claims",
]
