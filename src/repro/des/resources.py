"""Shared-resource primitives: :class:`Resource` and :class:`Store`.

These are the queueing blocks used by the network substrate (channel
capacity, per-host inboxes).  Both hand out *request events*: a process
yields the returned event and resumes once the request is granted.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.des.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class Request(Event):
    """Grant event for one unit of a :class:`Resource`."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource"):
        super().__init__(env)
        self.resource = resource

    # context-manager sugar: ``with res.request() as req: yield req``
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with FIFO waiters.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of simultaneous holders (default 1 -- a mutex).
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> Request:
        """Ask for one unit; the returned event fires when granted."""
        req = Request(self.env, self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit (idempotent for queued reqs)."""
        try:
            self.users.remove(request)
        except ValueError:
            # Never granted: drop it from the wait queue if still there.
            try:
                self.queue.remove(request)
            except ValueError:
                pass
            return
        if self.queue:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`."""

    __slots__ = ("filter",)

    def __init__(self, env: "Environment", filter: Optional[Callable[[Any], bool]]):
        super().__init__(env)
        self.filter = filter


class Store:
    """An unbounded (or bounded) FIFO buffer of Python objects.

    ``put`` never blocks unless *capacity* is reached, in which case it
    raises (the mobile-network substrate sizes its buffers explicitly and
    treats overflow as a modelling error rather than back-pressure).

    ``get`` returns an event that fires with the oldest matching item;
    optional *filter* gets selective retrieval (used e.g. to pull a
    specific control message).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> None:
        """Insert *item*, waking the first compatible waiting getter."""
        if len(self.items) >= self.capacity:
            raise OverflowError(f"Store capacity {self.capacity} exceeded")
        self.items.append(item)
        self._dispatch()

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:
        """Return an event firing with the next (matching) item."""
        ev = StoreGet(self.env, filter)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(
        self, filter: Optional[Callable[[Any], bool]] = None
    ) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        for idx, item in enumerate(self.items):
            if filter is None or filter(item):
                del self.items[idx]
                return True, item
        return False, None

    def _dispatch(self) -> None:
        """Match waiting getters against buffered items (FIFO-fair)."""
        made_progress = True
        while made_progress and self._getters and self.items:
            made_progress = False
            for gi, getter in enumerate(self._getters):
                ok, item = self.try_get(getter.filter)
                if ok:
                    del self._getters[gi]
                    getter.succeed(item)
                    made_progress = True
                    break
