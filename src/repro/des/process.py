"""Generator-coroutine processes.

A :class:`Process` drives a Python generator that ``yield``\\ s
:class:`~repro.des.events.Event` objects.  The process suspends until the
yielded event fires, then resumes with the event's value (or has the
event's exception thrown into it).  A process is itself an event that
triggers with the generator's return value, so processes compose:
``yield env.process(child())`` waits for the child.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.core import PRIORITY_URGENT
from repro.des.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment


class Process(Event):
    """Execution wrapper around a generator of events.

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        A generator yielding :class:`Event` instances.

    Examples
    --------
    >>> def worker(env, log):
    ...     yield env.timeout(3)
    ...     log.append(env.now)
    ...     return "done"
    >>> env, log = Environment(), []   # doctest: +SKIP
    """

    __slots__ = ("generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when ready).
        self._target: Optional[Event] = None
        # Kick the generator off at the current time via an urgent event.
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(priority=PRIORITY_URGENT)

    # ------------------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process raises ``RuntimeError``.  The event
        the process was waiting on stays pending; the process may re-wait
        on it after handling the interrupt.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        ev = Event(self.env)
        ev.callbacks.append(self._do_interrupt)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev.defused = True  # the interrupt is delivered, never "unhandled"
        self.env.schedule(ev, 0.0, PRIORITY_URGENT)

    # ------------------------------------------------------------------
    def _do_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # died between scheduling and delivery
            return
        # Detach from the waited-on event so a later trigger doesn't
        # double-resume us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._target = None
        self._step(event.value, failed=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        if event.failed:
            event.defused = True
            self._step(event.value, failed=True)
        else:
            self._step(event.value, failed=False)

    def _step(self, value: Any, failed: bool) -> None:
        """Advance the generator by one yield."""
        self.env._active_process = self
        try:
            if failed:
                target = self.generator.throw(value)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value, priority=PRIORITY_URGENT)
            return
        except Interrupt as exc:
            # Unhandled interrupt kills the process "successfully failed".
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        except BaseException as exc:
            self.fail(exc, priority=PRIORITY_URGENT)
            return
        finally:
            self.env._active_process = None
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected an Event"
            )
        if target.env is not self.env:
            raise ValueError(
                f"process {self.name!r} yielded an event from another Environment"
            )
        self._target = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "dead" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
