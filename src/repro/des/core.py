"""Simulation clock and event loop.

The :class:`Environment` owns a binary-heap agenda of pending events.
Each agenda entry is a ``(time, priority, seq, event)`` tuple; ``seq`` is
a monotonically increasing tie-breaker, so same-time/same-priority events
fire in insertion order.  That total order is what makes seeded runs
bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.des.events import Event
    from repro.des.process import Process

#: Default scheduling priority.  Lower fires first at equal times.
PRIORITY_NORMAL = 1
#: Priority used for "urgent" bookkeeping events (e.g. process resumption).
PRIORITY_URGENT = 0


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Environment.run` early.

    The event loop catches it, leaves remaining agenda entries in place
    (so :meth:`Environment.peek` still works) and returns the carried
    ``value`` from :meth:`Environment.run`.
    """

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).

    Examples
    --------
    >>> env = Environment()
    >>> fired = []
    >>> t = env.timeout(5.0)
    >>> _ = t.add_callback(lambda ev: fired.append(env.now))
    >>> env.run()
    >>> fired
    [5.0]
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "event_count")

    def __init__(self, initial_time: float = 0.0):
        self._now: float = float(initial_time)
        self._queue: list[tuple[float, int, int, "Event"]] = []
        self._seq: int = 0
        self._active_process: Optional["Process"] = None
        #: Number of events processed so far (diagnostic / benchmark aid).
        self.event_count: int = 0

    # ------------------------------------------------------------------
    # clock & agenda
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional["Process"]:
        """The process whose generator is currently executing, if any."""
        return self._active_process

    def schedule(
        self,
        event: "Event",
        delay: float = 0.0,
        priority: int = PRIORITY_NORMAL,
    ) -> "Event":
        """Place *event* on the agenda ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._seq += 1
        event._scheduled_at = self._now + delay
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))
        return event

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # ------------------------------------------------------------------
    # event factories (convenience, mirrors simpy)
    # ------------------------------------------------------------------
    def event(self) -> "Event":
        """Create a fresh, untriggered :class:`Event` bound to this env."""
        from repro.des.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> "Event":
        """Create and schedule a :class:`Timeout` firing after *delay*."""
        from repro.des.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator) -> "Process":
        """Spawn a generator-coroutine :class:`Process`."""
        from repro.des.process import Process

        return Process(self, generator)

    def call_at(
        self, when: float, fn: Callable[[], Any], priority: int = PRIORITY_NORMAL
    ) -> "Event":
        """Invoke ``fn()`` at absolute simulation time *when*."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        return self.call_later(when - self._now, fn, priority=priority)

    def call_later(
        self, delay: float, fn: Callable[[], Any], priority: int = PRIORITY_NORMAL
    ) -> "Event":
        """Invoke ``fn()`` after *delay* time units.

        Uses a lightweight direct-callback event: profiling showed the
        generic Timeout + wrapper-lambda path dominating large runs
        (~80k events per 4k simulated time units).
        """
        from repro.des.events import FunctionCall

        return FunctionCall(self, delay, fn, priority)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next agenda entry.

        Raises
        ------
        IndexError
            If the agenda is empty.
        """
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self._now = when
        self.event_count += 1
        event._fire()

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the agenda empties or the clock passes *until*.

        If a callback raises :class:`StopSimulation`, its carried value is
        returned.  When *until* is given the clock is advanced exactly to
        *until* on normal termination, so ``env.now == until`` afterwards.
        """
        try:
            if until is None:
                while self._queue:
                    self.step()
            else:
                limit = float(until)
                if limit < self._now:
                    raise ValueError(
                        f"until={limit} is in the past (now={self._now})"
                    )
                while self._queue and self._queue[0][0] <= limit:
                    self.step()
                self._now = limit
        except StopSimulation as stop:
            return stop.value
        return None

    def run_until_event(self, event: "Event") -> Any:
        """Run until *event* has been triggered; return its value.

        Raises
        ------
        RuntimeError
            If the agenda empties before *event* triggers.
        """
        while not event.processed:
            if not self._queue:
                raise RuntimeError(
                    f"agenda exhausted before {event!r} triggered"
                )
            self.step()
        if event.failed:
            raise event.value
        return event.value

    def drain(self, events: Iterable["Event"]) -> list[Any]:
        """Run until every event in *events* triggered; return values."""
        return [self.run_until_event(ev) for ev in events]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Environment now={self._now} pending={len(self._queue)} "
            f"processed={self.event_count}>"
        )
