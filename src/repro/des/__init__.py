"""Discrete-event simulation engine.

A lean, deterministic, heap-scheduled DES kernel in the style of SimPy
(which is not available offline).  It provides:

* :class:`~repro.des.core.Environment` -- the simulation clock and event
  loop.
* :class:`~repro.des.events.Event`, :class:`~repro.des.events.Timeout`,
  condition events (:func:`~repro.des.events.all_of`,
  :func:`~repro.des.events.any_of`).
* :class:`~repro.des.process.Process` -- generator-coroutine processes
  with interrupt support.
* :class:`~repro.des.resources.Resource` and
  :class:`~repro.des.resources.Store` -- shared-resource primitives used
  by the network substrate.
* :class:`~repro.des.rng.RandomStreams` -- reproducible named random
  substreams built on :class:`numpy.random.SeedSequence`.

Determinism contract: events scheduled for the same simulation time fire
in (priority, insertion-order) order, so a seeded simulation replays
identically across runs and platforms.
"""

from repro.des.core import Environment, StopSimulation
from repro.des.events import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    Timeout,
    all_of,
    any_of,
)
from repro.des.process import Process
from repro.des.resources import Resource, Store
from repro.des.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "StopSimulation",
    "Store",
    "Timeout",
    "all_of",
    "any_of",
]
