"""Event primitives for the DES kernel.

An :class:`Event` moves through three states:

``untriggered`` --(succeed/fail)--> ``triggered (pending on agenda)``
--(agenda pop)--> ``processed`` (callbacks ran).

Callbacks receive the event itself; ``event.value`` carries the payload
(or the exception, when :attr:`Event.failed` is true).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.des.core import PRIORITY_NORMAL, PRIORITY_URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment

#: Sentinel distinguishing "no value yet" from a legitimate ``None`` value.
_PENDING = object()


class EventAlreadyTriggered(RuntimeError):
    """Raised when succeed/fail is called twice on the same event."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`repro.des.process.Process.interrupt`.

    The interrupting cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    env:
        Owning environment.

    Notes
    -----
    Triggering (``succeed``/``fail``) *schedules* the event; its callbacks
    run when the agenda reaches it, which for a zero delay is still a
    distinct later step.  This mirrors SimPy semantics and avoids
    re-entrant callback chains.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled_at", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._scheduled_at: Optional[float] = None
        #: When a failed event's exception was consumed by someone.
        self.defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once succeed/fail was called (value is decided)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful if triggered)."""
        return self._ok

    @property
    def failed(self) -> bool:
        """True when the event carries an exception."""
        return self.triggered and not self._ok

    @property
    def value(self) -> Any:
        """The event payload (or exception for failed events)."""
        if self._value is _PENDING:
            raise AttributeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger successfully with *value* and schedule callbacks."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(repr(self))
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger as failed, carrying *exception*."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(repr(self))
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)

    # -- callbacks ---------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> "Event":
        """Attach *fn*; runs immediately if the event already processed."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)
        return self

    def _fire(self) -> None:
        """Agenda hook: run and clear callbacks (single shot)."""
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)
        if self.failed and not self.defused:
            # Nobody consumed the failure: surface it like SimPy does.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(
        self,
        env: "Environment",
        delay: float,
        value: Any = None,
        priority: int = PRIORITY_NORMAL,
    ):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay, priority)


class FunctionCall(Event):
    """Lean scheduled callback: fires ``fn()`` after *delay*.

    The fast path behind :meth:`Environment.call_later`; skips the
    callback-list machinery of generic events (one allocation instead of
    three on the simulator's hottest loop).
    """

    __slots__ = ("fn",)

    def __init__(self, env, delay: float, fn, priority: int = PRIORITY_NORMAL):
        super().__init__(env)
        self.fn = fn
        self._value = None  # pre-triggered, like Timeout
        env.schedule(self, delay, priority)

    def _fire(self) -> None:
        self.callbacks = None
        self.fn()


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all condition events must share one Environment")
        self._pending_count = sum(1 for ev in self.events if not ev.processed)
        failed_child = next(
            (ev for ev in self.events if ev.processed and ev.failed), None
        )
        if failed_child is not None:
            failed_child.defused = True
            self.fail(failed_child.value, priority=PRIORITY_URGENT)
        elif not self.events or self._immediately_done():
            # Everything already settled: trigger via urgent no-delay event.
            self._settle()
        else:
            for ev in self.events:
                if not ev.processed:
                    ev.add_callback(self._on_child)

    # subclass hooks -----------------------------------------------------
    def _immediately_done(self) -> bool:
        raise NotImplementedError

    def _is_done(self) -> bool:
        raise NotImplementedError

    # ---------------------------------------------------------------------
    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            if ev.failed:
                ev.defused = True
            return
        if ev.failed:
            ev.defused = True
            self.fail(ev.value, priority=PRIORITY_URGENT)
            return
        self._pending_count -= 1
        if self._is_done():
            self._settle()

    def _settle(self) -> None:
        if not self.triggered:
            self.succeed(self._collect(), priority=PRIORITY_URGENT)

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}


class AllOf(_Condition):
    """Triggers when every child event has succeeded.

    Value is a dict mapping each child event to its value.  Fails as soon
    as any child fails.
    """

    __slots__ = ()

    def _immediately_done(self) -> bool:
        return all(ev.processed and ev.ok for ev in self.events)

    def _is_done(self) -> bool:
        return self._pending_count == 0


class AnyOf(_Condition):
    """Triggers when at least one child event has succeeded."""

    __slots__ = ()

    def _immediately_done(self) -> bool:
        return any(ev.processed and ev.ok for ev in self.events)

    def _is_done(self) -> bool:
        return self._pending_count < len(self.events)


def all_of(env: "Environment", events: Iterable[Event]) -> AllOf:
    """Convenience constructor for :class:`AllOf`."""
    return AllOf(env, events)


def any_of(env: "Environment", events: Iterable[Event]) -> AnyOf:
    """Convenience constructor for :class:`AnyOf`."""
    return AnyOf(env, events)
