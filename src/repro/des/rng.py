"""Reproducible named random substreams.

Every stochastic component of the simulator (per-host internal-event
timers, mobility, message destinations, ...) draws from its own
:class:`numpy.random.Generator`, derived from one root seed via
``SeedSequence.spawn``-style keyed derivation.  Two properties follow:

* a run is fully determined by ``(seed, configuration)``;
* adding a new consumer stream does not perturb existing streams
  (unlike sharing one generator), which keeps paper-figure sweeps
  comparable across library versions.
"""

from __future__ import annotations

import zlib
from typing import Iterator, Sequence

import numpy as np


def _key_to_int(key: str) -> int:
    """Stable 32-bit hash of a stream name (crc32; Python's ``hash`` is
    salted per-process and would break reproducibility)."""
    return zlib.crc32(key.encode("utf-8"))


class RandomStreams:
    """A family of named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed for the whole family.

    Examples
    --------
    >>> rs = RandomStreams(42)
    >>> a = rs.stream("mobility/h0")
    >>> b = rs.stream("mobility/h1")
    >>> a is rs.stream("mobility/h0")   # cached per name
    True
    >>> float(a.exponential(1.0)) != float(b.exponential(1.0))
    True
    """

    #: Draws buffered per stream; per-call numpy overhead dominates the
    #: simulator's RNG cost otherwise (profiling, see DESIGN.md).
    BATCH = 512

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {seed!r}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._exp_buf: dict[str, tuple[np.ndarray, int]] = {}
        self._unit_buf: dict[str, tuple[np.ndarray, int]] = {}
        self._int_buf: dict[tuple[str, int], tuple[np.ndarray, int]] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (and memoise) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_key_to_int(name),)
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    # -- convenience draws -------------------------------------------------
    # Draws are buffered (BATCH at a time) per stream name; the value
    # sequence per name is still fully determined by (seed, name, call
    # order), so runs stay reproducible.

    def _next_unit_exponential(self, name: str) -> float:
        buf = self._exp_buf.get(name)
        if buf is None or buf[1] >= self.BATCH:
            buf = (self.stream(name).exponential(1.0, self.BATCH), 0)
        value = buf[0][buf[1]]
        self._exp_buf[name] = (buf[0], buf[1] + 1)
        return float(value)

    def _next_unit_uniform(self, name: str) -> float:
        buf = self._unit_buf.get(name)
        if buf is None or buf[1] >= self.BATCH:
            buf = (self.stream(name).random(self.BATCH), 0)
        value = buf[0][buf[1]]
        self._unit_buf[name] = (buf[0], buf[1] + 1)
        return float(value)

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream *name*."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return self._next_unit_exponential(name) * mean

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One draw from U[low, high) on stream *name*."""
        return low + (high - low) * self._next_unit_uniform(name)

    def bernoulli(self, name: str, p: float) -> bool:
        """One biased coin flip with success probability *p*."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self._next_unit_uniform(name) < p

    def choice_other(self, name: str, n: int, exclude: int) -> int:
        """Uniform draw from ``{0..n-1} - {exclude}``.

        Used for "destination of each message is a uniformly distributed
        random variable" over the *other* hosts, and for cell switches to
        a *different* cell.
        """
        if n < 2:
            raise ValueError(f"need at least 2 alternatives, got n={n}")
        if not 0 <= exclude < n:
            raise ValueError(f"exclude={exclude} out of range for n={n}")
        k = self.choice_index(name, n - 1)
        return k if k < exclude else k + 1

    def choice_index(self, name: str, k: int) -> int:
        """Uniform draw from ``{0..k-1}`` on stream *name*."""
        if k < 1:
            raise ValueError(f"need at least 1 alternative, got k={k}")
        key = (name, k)
        buf = self._int_buf.get(key)
        if buf is None or buf[1] >= self.BATCH:
            buf = (self.stream(name).integers(0, k, self.BATCH), 0)
        value = int(buf[0][buf[1]])
        self._int_buf[key] = (buf[0], buf[1] + 1)
        return value

    def spawn_seeds(self, name: str, count: int) -> list[int]:
        """Derive *count* child seeds (for multi-run sweeps / workers)."""
        gen = self.stream(f"__spawn__/{name}")
        return [int(s) for s in gen.integers(0, 2**63 - 1, size=count)]


def seed_sequence(root_seed: int, count: int) -> Iterator[int]:
    """Yield *count* independent run seeds derived from *root_seed*."""
    yield from RandomStreams(root_seed).spawn_seeds("runs", count)


def check_distinct(streams: RandomStreams, names: Sequence[str]) -> bool:
    """Diagnostic: True when the named streams have distinct states."""
    states = set()
    for name in names:
        gen = streams.stream(name)
        states.add(bytes(str(gen.bit_generator.state), "utf-8"))
    return len(states) == len(names)
