"""Invariant audit: continuously prove the fast paths stay paper-correct.

The engine went fast in three steps (fused replay, compiled traces,
counters-only protocols, a parallel sweep pool), and each step is a
chance to silently break the properties the paper's argument rests on:
recovery lines must admit no orphan message (Section 3), checkpoint
indices must grow monotonically, and every engine must produce the same
counters as the reference single-protocol replay.  This module is the
tripwire: an opt-in audit that replays the consistency oracle of
:mod:`repro.core.consistency` against a run and reports every breach as
a structured :class:`AuditViolation`.

Checks
------

* **counter-mismatch** -- a protocol's incremental counters disagree
  with its checkpoint log, or a protocol-specific invariant
  (:meth:`~repro.protocols.base.CheckpointingProtocol.invariant_violations`,
  e.g. QBC's ``rn <= sn``) fails.
* **index-monotonicity** -- a host's checkpoint indices decrease, or
  repeat without the QBC replacement flag.
* **fused-divergence** -- :func:`~repro.core.replay.replay_fused`
  produced different counters than the reference
  :func:`~repro.core.replay.replay` for the same (trace, protocol).
* **orphan-message** -- the protocol's own recovery line (min-index
  rule, or TP's anchored lines) orphans a message, i.e. the line is
  not a consistent global checkpoint.
* **broken-recovery-line** -- the recovery line cannot even be
  materialised (a host lacks the checkpoint its index demands).

:func:`audit_trace` runs every check over one trace;
:func:`run_audit_grid` sweeps a config grid through the sweep runner
with auditing and telemetry on, backing the ``repro audit`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.core.trace import Trace
from repro.protocols.base import CheckpointingProtocol, registry

#: Violation kinds (the ``AuditViolation.kind`` vocabulary).
ORPHAN_MESSAGE = "orphan-message"
BROKEN_RECOVERY_LINE = "broken-recovery-line"
INDEX_MONOTONICITY = "index-monotonicity"
FUSED_DIVERGENCE = "fused-divergence"
COUNTER_MISMATCH = "counter-mismatch"

#: Cap on orphan violations reported per (protocol, line) so a badly
#: broken protocol cannot flood the report.
MAX_ORPHANS_REPORTED = 5


class AuditViolation(Exception):
    """One audited invariant breach, with enough structure to act on.

    An :class:`Exception` so strict callers can ``raise`` it directly,
    but normally collected into lists by the audit entry points.  All
    fields are carried positionally in ``args`` so instances pickle
    cleanly through the sweep worker pool.
    """

    def __init__(
        self,
        kind: str,
        protocol: str,
        detail: str,
        host: Optional[int] = None,
        seed: Optional[int] = None,
        t_switch: Optional[float] = None,
    ):
        super().__init__(kind, protocol, detail, host, seed, t_switch)
        self.kind = kind
        self.protocol = protocol
        self.detail = detail
        self.host = host
        self.seed = seed
        self.t_switch = t_switch

    def __str__(self) -> str:
        where = []
        if self.t_switch is not None:
            where.append(f"t_switch={self.t_switch:g}")
        if self.seed is not None:
            where.append(f"seed={self.seed}")
        if self.host is not None:
            where.append(f"host={self.host}")
        ctx = f" [{' '.join(where)}]" if where else ""
        return f"{self.kind}({self.protocol}){ctx}: {self.detail}"

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe form for telemetry/report emission."""
        return {
            "kind": self.kind,
            "protocol": self.protocol,
            "detail": self.detail,
            "host": self.host,
            "seed": self.seed,
            "t_switch": self.t_switch,
        }


#: name -> callable(n_hosts, n_mss) building a fresh protocol instance.
FactoryMap = Mapping[str, Callable[[int, int], CheckpointingProtocol]]


def check_protocol_invariants(
    protocol: CheckpointingProtocol,
    seed: Optional[int] = None,
    t_switch: Optional[float] = None,
) -> list[AuditViolation]:
    """Post-run structural checks on one protocol instance.

    Covers the counter/log consistency contract of
    :class:`~repro.protocols.base.CheckpointingProtocol` (plus any
    subclass invariants) and per-host index monotonicity over the
    checkpoint log: indices may never decrease, and may repeat only via
    QBC's explicit replacement rule.
    """
    violations = [
        AuditViolation(
            COUNTER_MISMATCH, protocol.name, problem,
            seed=seed, t_switch=t_switch,
        )
        for problem in protocol.invariant_violations()
    ]
    last_seen: dict[int, tuple[int, int]] = {}  # host -> (index, log pos)
    for pos, ck in enumerate(protocol.checkpoints):
        prev = last_seen.get(ck.host)
        if prev is not None:
            prev_index, prev_pos = prev
            if ck.index < prev_index or (
                ck.index == prev_index and not ck.replaced
            ):
                violations.append(
                    AuditViolation(
                        INDEX_MONOTONICITY,
                        protocol.name,
                        f"checkpoint #{pos} has index {ck.index} after "
                        f"index {prev_index} (log entry #{prev_pos})",
                        host=ck.host,
                        seed=seed,
                        t_switch=t_switch,
                    )
                )
        last_seen[ck.host] = (ck.index, pos)
    return violations


def _make(
    name: str,
    trace: Trace,
    factories: Optional[FactoryMap],
) -> CheckpointingProtocol:
    factory = (factories or registry)[name]
    return factory(trace.n_hosts, trace.n_mss)


def _check_lines(
    trace: Trace,
    name: str,
    protocol_factory: Callable[[], CheckpointingProtocol],
    seed: Optional[int],
    t_switch: Optional[float],
) -> list[AuditViolation]:
    """Replay the consistency oracle against *name*'s recovery lines."""
    from repro.core.consistency import (
        annotate_replay,
        build_recovery_line,
        find_orphans,
        tp_anchored_line,
    )

    protocol = protocol_factory()
    run = annotate_replay(trace, protocol)
    violations: list[AuditViolation] = []

    def report_orphans(line, label: str) -> None:
        orphans = find_orphans(run, line)
        for m in orphans[:MAX_ORPHANS_REPORTED]:
            violations.append(
                AuditViolation(
                    ORPHAN_MESSAGE,
                    name,
                    f"{label} orphans msg {m.msg_id} "
                    f"({m.src}@{m.src_pos} -> {m.dst}@{m.dst_pos})",
                    host=m.dst,
                    seed=seed,
                    t_switch=t_switch,
                )
            )
        if len(orphans) > MAX_ORPHANS_REPORTED:
            violations.append(
                AuditViolation(
                    ORPHAN_MESSAGE,
                    name,
                    f"{label}: {len(orphans) - MAX_ORPHANS_REPORTED} "
                    "further orphans suppressed",
                    seed=seed,
                    t_switch=t_switch,
                )
            )

    try:
        line = build_recovery_line(run, protocol)
    except NotImplementedError:
        # No global on-the-fly line.  TP guarantees *anchored* lines
        # instead; audit every anchor.  Protocols with neither rule
        # (the uncoordinated baseline) promise nothing to audit.
        if not hasattr(protocol, "required_indices"):
            return violations
        for anchor in range(trace.n_hosts):
            try:
                anchored = tp_anchored_line(run, protocol, anchor)
            except (ValueError, KeyError) as exc:
                violations.append(
                    AuditViolation(
                        BROKEN_RECOVERY_LINE,
                        name,
                        f"anchored line of host {anchor}: {exc}",
                        host=anchor,
                        seed=seed,
                        t_switch=t_switch,
                    )
                )
                continue
            report_orphans(anchored, f"anchored line of host {anchor}")
        return violations
    except ValueError as exc:
        violations.append(
            AuditViolation(
                BROKEN_RECOVERY_LINE, name, str(exc),
                seed=seed, t_switch=t_switch,
            )
        )
        return violations
    report_orphans(line, "recovery line")
    return violations


def audit_trace(
    trace: Trace,
    protocols: Sequence[str],
    factories: Optional[FactoryMap] = None,
    seed: Optional[int] = None,
    t_switch: Optional[float] = None,
) -> list[AuditViolation]:
    """Run every audit check over one trace; returns all violations.

    For each protocol name: a reference-engine run on a fresh logging
    instance (whose counters, log and invariants are checked), one
    fused-engine pass over fresh instances (whose counters must match
    the reference bit-for-bit), and the recovery-line orphan oracle on
    an annotated re-run.  Both runs go through the unified engine layer
    (:mod:`repro.engine`) -- with auditing *off*, since this function
    is what an armed audit executes.  *factories* overrides the
    protocol registry -- tests use it to inject deliberately broken
    stubs.

    The (seed, t_switch) coordinates are stamped into every violation so
    grid reports stay actionable.
    """
    from repro.engine import RunSpec, execute

    violations: list[AuditViolation] = []

    def engine_run(kind: str):
        return execute(
            RunSpec(
                protocols=tuple(protocols),
                trace=trace,
                engine=kind,
                seed=seed,
                factories=factories,
            )
        )

    reference = engine_run("reference")
    for outcome in reference.outcomes:
        violations.extend(
            check_protocol_invariants(
                outcome.protocol, seed=seed, t_switch=t_switch
            )
        )

    fused = engine_run("fused")
    for ref_out, fused_out in zip(reference.outcomes, fused.outcomes):
        name = ref_out.name
        ref_sig = ref_out.protocol.counter_signature()
        fused_sig = fused_out.protocol.counter_signature()
        if ref_sig != fused_sig:
            diff = {
                key: (ref_sig[key], fused_sig[key])
                for key in ref_sig
                if ref_sig[key] != fused_sig[key]
            }
            violations.append(
                AuditViolation(
                    FUSED_DIVERGENCE,
                    name,
                    f"fused vs reference counters differ: {diff}",
                    seed=seed,
                    t_switch=t_switch,
                )
            )

    for name in protocols:
        violations.extend(
            _check_lines(
                trace,
                name,
                lambda name=name: _make(name, trace, factories),
                seed,
                t_switch,
            )
        )
    return violations


# ---------------------------------------------------------------------------
# grid audit (the `repro audit` CLI body)
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class AuditGridResult:
    """Outcome of auditing a sweep grid."""

    #: The audited sweep (audit + telemetry threaded through the runner).
    sweep: Any

    @property
    def violations(self) -> list[AuditViolation]:
        """All violations across the grid, in (point, seed) order."""
        return list(self.sweep.violations)

    @property
    def telemetry(self):
        """All task telemetry records, in (point, seed) order."""
        return self.sweep.telemetry

    @property
    def ok(self) -> bool:
        """True iff the whole grid audited clean."""
        return not self.sweep.violations

    def report(self) -> str:
        """Terminal report: telemetry table, summary, violations."""
        from repro.obs.telemetry import telemetry_table

        config = self.sweep.config
        lines = [
            f"audit grid: {len(config.t_switch_values)} t_switch value(s) "
            f"x {len(config.seeds)} seed(s), "
            f"protocols {', '.join(config.protocols)}",
            "",
            telemetry_table(self.telemetry),
            "",
            str(self.sweep.telemetry_summary()),
            "",
        ]
        if self.ok:
            lines.append(
                f"zero violations across "
                f"{len(config.t_switch_values) * len(config.seeds)} runs"
            )
        else:
            lines.append(f"{len(self.violations)} VIOLATION(S):")
            lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


def run_audit_grid(config) -> AuditGridResult:
    """Audit every (t_switch, seed) task of *config*'s grid.

    Forces ``audit=True`` on a copy of the sweep config and runs it
    through the standard sweep engine, so the audit exercises exactly
    the production path (cache, pool, fused replay) it is meant to
    police.
    """
    from dataclasses import replace

    from repro.experiments.runner import run_sweep

    sweep = run_sweep(replace(config, audit=True))
    return AuditGridResult(sweep=sweep)
