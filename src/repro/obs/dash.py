"""Live sweep dashboard: a TTY view over the observability JSONL.

``repro dash FILE`` renders (and re-renders, in follow mode) a compact
fleet dashboard from any mix of observability records -- telemetry
task lines, progress heartbeats, streamed outcome lines -- in one or
more JSONL files.  The pieces:

* :class:`JsonlFollower` -- an incremental JSONL reader that survives
  the realities of following a live file: it keeps its offset between
  polls (no full re-reads), tolerates torn trailing lines, and detects
  **truncation** (size shrank below the offset) and **rotation** (the
  inode changed, or the path briefly disappeared) by reopening from
  the start instead of stalling at a stale offset.  ``repro tail
  --follow`` rides the same class.
* :func:`render_dashboard` -- pure function from parsed records to a
  dashboard string (testable without a terminal): sweep progress and
  worker liveness from the latest heartbeat, per-worker throughput,
  cache-tier hit rates, retry/quarantine counts, and per-protocol
  forced-checkpoint-rate sparklines -- the paper's comparison axis,
  live.
* :func:`run_dashboard` -- the follow loop gluing the two together
  with ANSI home-and-clear repaints.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Iterable, Optional

__all__ = [
    "JsonlFollower",
    "sparkline",
    "render_dashboard",
    "run_dashboard",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


class JsonlFollower:
    """Incrementally read a JSONL file that may rotate or truncate.

    ``poll()`` reads any new complete lines since the last call and
    returns ``True`` when :attr:`records` changed.  A torn trailing
    line (a writer mid-``write``) is buffered until its newline
    arrives.  When the file is replaced (new inode) or truncated
    (size below the consumed offset), the follower reopens from the
    beginning and rebuilds :attr:`records` from scratch -- the next
    render sees the new file's content, not a stall.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.records: list[dict] = []
        self.resets = 0
        self._fh = None
        self._ino: Optional[int] = None
        self._partial = ""

    # -- internals ------------------------------------------------------
    def _close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
        self._fh = None
        self._ino = None
        self._partial = ""

    def _reset(self) -> bool:
        had = bool(self.records)
        self._close()
        self.records = []
        if had:
            self.resets += 1
        return had

    def _open(self) -> bool:
        try:
            fh = open(self.path, "r")
        except OSError:
            return False
        self._fh = fh
        try:
            self._ino = os.fstat(fh.fileno()).st_ino
        except OSError:
            self._ino = None
        self._partial = ""
        return True

    # -- public ---------------------------------------------------------
    def poll(self) -> bool:
        """Consume new lines; ``True`` when :attr:`records` changed."""
        changed = False
        try:
            st = os.stat(self.path)
        except OSError:
            # File gone (mid-rotation or never created): drop state so
            # a reappearing file is read from its start.
            return self._reset()
        if self._fh is not None:
            truncated = st.st_size < self._fh.tell()
            rotated = self._ino is not None and st.st_ino != self._ino
            if truncated or rotated:
                changed = self._reset()
        if self._fh is None and not self._open():
            return changed
        chunk = self._fh.read()
        if not chunk:
            return changed
        buf = self._partial + chunk
        lines = buf.split("\n")
        self._partial = lines.pop()  # "" on a newline-terminated chunk
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                self.records.append(json.loads(line))
                changed = True
            except json.JSONDecodeError:
                continue  # torn or foreign line; skip it
        return changed

    def close(self) -> None:
        self._close()


def sparkline(values: Iterable[float], width: int = 24) -> str:
    """Unicode block sparkline of the last *width* values."""
    vals = [float(v) for v in values][-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        idx = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[idx])
    return "".join(out)


def _classify(records: Iterable[dict]):
    tasks, heartbeats, outcomes = [], [], []
    for rec in records:
        kind = rec.get("kind")
        if kind == "heartbeat":
            heartbeats.append(rec)
        elif kind == "outcome":
            outcomes.append(rec)
        elif kind is None and "wall_time_s" in rec:
            tasks.append(rec)
    return tasks, heartbeats, outcomes


def _fmt_rate(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.2f}"


def render_dashboard(records: Iterable[dict], width: int = 72) -> str:
    """Render parsed observability records as a dashboard string."""
    records = list(records)
    tasks, heartbeats, outcomes = _classify(records)
    lines: list[str] = []
    rule = "─" * width

    # -- header: latest heartbeat --------------------------------------
    lines.append("repro sweep dashboard")
    lines.append(rule)
    if heartbeats:
        hb = heartbeats[-1]
        done, total = hb.get("done", 0), hb.get("total", 0)
        pct = 100.0 * done / total if total else 0.0
        eta = hb.get("eta_s")
        workers = hb.get("workers_alive")
        lines.append(
            f"progress  {done}/{total} cells ({pct:.0f}%)"
            f"  rate {_fmt_rate(hb.get('rate_per_s'))}/s"
            + (f"  eta {eta:.0f}s" if isinstance(eta, (int, float)) else "")
            + (f"  workers {workers}" if workers is not None else "")
        )
        lines.append(
            f"retries {hb.get('retries', 0)}"
            f"  quarantined {hb.get('quarantined', 0)}"
            f"  resumed {hb.get('resumed', 0)}"
            f"  cache hits {hb.get('cache_hits', 0)}"
        )
        rates = [
            h.get("rate_per_s")
            for h in heartbeats
            if h.get("rate_per_s") is not None
        ]
        if rates:
            lines.append(f"throughput {sparkline(rates)}")
    elif tasks:
        lines.append(f"progress  {len(tasks)} task records (no heartbeats)")
    elif outcomes:
        lines.append(
            f"progress  {len(outcomes)} outcome records (no heartbeats)"
        )
    else:
        lines.append("(no records yet)")

    # -- per-worker throughput -----------------------------------------
    if tasks:
        by_pid: dict[Any, dict] = {}
        for rec in tasks:
            slot = by_pid.setdefault(
                rec.get("pid"), {"tasks": 0, "busy_s": 0.0, "hits": 0}
            )
            slot["tasks"] += 1
            slot["busy_s"] += rec.get("wall_time_s") or 0.0
            if rec.get("cache_hit"):
                slot["hits"] += 1
        lines.append(rule)
        lines.append("worker       tasks   busy_s   tasks/s  cache-hit")
        for pid, slot in sorted(by_pid.items(), key=lambda kv: str(kv[0])):
            busy = slot["busy_s"]
            rate = slot["tasks"] / busy if busy > 0 else 0.0
            hit = 100.0 * slot["hits"] / slot["tasks"]
            lines.append(
                f"{str(pid):<12} {slot['tasks']:>5} {busy:>8.2f}"
                f" {rate:>9.2f} {hit:>9.0f}%"
            )

        # -- cache tiers ----------------------------------------------
        tiers: dict[str, int] = {}
        for rec in tasks:
            tier = rec.get("trace_source") or "unknown"
            tiers[tier] = tiers.get(tier, 0) + 1
        total_t = sum(tiers.values())
        parts = ", ".join(
            f"{tier} {100.0 * n / total_t:.0f}%"
            for tier, n in sorted(tiers.items(), key=lambda kv: -kv[1])
        )
        lines.append(rule)
        lines.append(f"cache tiers  {parts}")

    # -- per-protocol forced-checkpoint-rate sparklines ----------------
    forced: dict[str, list[float]] = {}
    for rec in tasks:
        for proto, counters in sorted((rec.get("counters") or {}).items()):
            n_total = counters.get("n_total") or 0
            if n_total:
                forced.setdefault(proto, []).append(
                    counters.get("n_forced", 0) / n_total
                )
    if not forced:
        for rec in outcomes:
            proto = rec.get("protocol")
            n_total = rec.get("n_total") or 0
            if proto and n_total:
                forced.setdefault(proto, []).append(
                    rec.get("n_forced", 0) / n_total
                )
    if forced:
        lines.append(rule)
        lines.append("forced-checkpoint rate (per task, oldest→newest)")
        name_w = max(len(p) for p in forced)
        for proto, series in sorted(forced.items()):
            lines.append(
                f"{proto:<{name_w}}  {sparkline(series)}"
                f"  last {series[-1]:.3f}"
            )
    return "\n".join(lines) + "\n"


def run_dashboard(
    path,
    interval_s: float = 2.0,
    once: bool = False,
    stream=None,
    width: int = 72,
    max_frames: Optional[int] = None,
) -> int:
    """Follow *path* and repaint the dashboard; ``repro dash`` body.

    ``once`` renders a single frame without clearing the screen.
    *max_frames* bounds the loop (tests); interactive use runs until
    interrupted.
    """
    out = stream if stream is not None else sys.stdout
    follower = JsonlFollower(path)
    frames = 0
    try:
        while True:
            follower.poll()
            frame = render_dashboard(follower.records, width=width)
            if once:
                out.write(frame)
                out.flush()
                return 0
            out.write("\x1b[2J\x1b[H" + frame)
            out.flush()
            frames += 1
            if max_frames is not None and frames >= max_frames:
                return 0
            time.sleep(interval_s)
    except KeyboardInterrupt:
        return 0
    finally:
        follower.close()
