"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The engines, the trace cache and the resilient sweep supervisor all
maintain operational counts (runs per engine kind, cache hits by tier,
corrupt evictions, retries, watchdog kills).  This module gives them
one home: a :class:`MetricsRegistry` of named, labelled instruments
that any layer can increment cheaply (one dict lookup + one addition
under a lock) and operators can dump two ways:

* :meth:`MetricsRegistry.as_dict` -- plain JSON for dashboards and
  tests;
* :meth:`MetricsRegistry.to_prometheus` -- Prometheus text exposition
  (``# TYPE`` headers, ``{label="value"}`` sets, histogram
  ``_bucket``/``_sum``/``_count`` series) ready to serve or push.

Everything is **process-local by design**: a parallel sweep's workers
each keep their own registry, and the supervisor-side registry counts
what the supervisor does (dispatch, retries, healing).  Cross-process
aggregation rides the telemetry channel
(:class:`~repro.obs.telemetry.TaskTelemetry`) and the fleet delta
frames (:mod:`repro.obs.fleet` diffs :meth:`MetricsRegistry.snapshot`
calls), never shared state -- a metrics registry must never block or
allocate proportionally to the work it measures.

Like :mod:`repro.obs.tracing`, this module is stdlib-only and imports
nothing from the rest of the package, so the cache and the engines can
use it without import cycles.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Iterable, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds, in seconds -- spans run
#: durations from sub-millisecond replays to minute-scale sweeps.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: dict) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double-quote and newline (in that order -- escaping the
    backslash first keeps the other two unambiguous)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(items: LabelItems) -> str:
    if not items:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in items
    )
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (pool width, queue depth)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative, Prometheus-style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket always
    exists, so ``observe`` never drops a sample.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> list[tuple[str, int]]:
        """(le, cumulative count) pairs, ``+Inf`` last."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((repr(bound) if bound != int(bound) else str(int(bound)), running))
        running += self.counts[-1]
        out.append(("+Inf", running))
        return out


class MetricsRegistry:
    """Named, labelled instruments behind one lock.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create: the first
    call fixes the metric's type (a name cannot be a counter in one
    place and a gauge in another -- that raises ``ValueError``), and
    each distinct label set is its own series under the name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: name -> instrument class name ("counter"/"gauge"/"histogram")
        self._kinds: dict[str, str] = {}
        #: (name, label items) -> instrument
        self._series: dict[tuple[str, LabelItems], Any] = {}

    # -- instrument access ---------------------------------------------
    def _get(self, cls, name: str, labels: dict, **kw):
        key = (name, _label_items(labels))
        with self._lock:
            kind = self._kinds.get(name)
            if kind is None:
                self._kinds[name] = cls.kind
            elif kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is a {kind}, not a {cls.kind}"
                )
            instrument = self._series.get(key)
            if instrument is None:
                instrument = self._series[key] = cls(**kw)
            return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- export ---------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Plain-JSON snapshot: series keyed ``name{label="v",...}``."""
        out: dict[str, Any] = {}
        with self._lock:
            for (name, items), instrument in sorted(self._series.items()):
                key = name + _label_suffix(items)
                if instrument.kind == "histogram":
                    out[key] = {
                        "kind": "histogram",
                        "sum": instrument.sum,
                        "count": instrument.count,
                        "buckets": {
                            le: n for le, n in instrument.cumulative()
                        },
                    }
                else:
                    out[key] = {
                        "kind": instrument.kind,
                        "value": instrument.value,
                    }
        return out

    def snapshot(self) -> dict[str, Any]:
        """Structured, JSON/pickle-safe dump of every series with raw
        (non-cumulative) values -- the exchange format the fleet
        aggregation layer (:mod:`repro.obs.fleet`) diffs and merges.

        Unlike :meth:`as_dict`, label sets stay structured (a list of
        ``[key, value]`` pairs) and histogram bucket counts are the raw
        per-bucket tallies, so two snapshots can be subtracted
        element-wise to form a delta.
        """
        series: list[dict[str, Any]] = []
        with self._lock:
            for (name, items), instrument in sorted(self._series.items()):
                entry: dict[str, Any] = {
                    "name": name,
                    "labels": [list(kv) for kv in items],
                    "kind": instrument.kind,
                }
                if instrument.kind == "histogram":
                    entry["buckets"] = list(instrument.buckets)
                    entry["counts"] = list(instrument.counts)
                    entry["sum"] = instrument.sum
                    entry["count"] = instrument.count
                else:
                    entry["value"] = instrument.value
                series.append(entry)
        return {"series": series}

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            by_name: dict[str, list[tuple[LabelItems, Any]]] = {}
            for (name, items), instrument in sorted(self._series.items()):
                by_name.setdefault(name, []).append((items, instrument))
            for name, series in by_name.items():
                lines.append(f"# TYPE {name} {self._kinds[name]}")
                for items, instrument in series:
                    if instrument.kind == "histogram":
                        for le, n in instrument.cumulative():
                            bucket_items = items + (("le", le),)
                            lines.append(
                                f"{name}_bucket"
                                f"{_label_suffix(bucket_items)} {n}"
                            )
                        suffix = _label_suffix(items)
                        lines.append(
                            f"{name}_sum{suffix} {_fmt(instrument.sum)}"
                        )
                        lines.append(
                            f"{name}_count{suffix} {instrument.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_label_suffix(items)} "
                            f"{_fmt(instrument.value)}"
                        )
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, path) -> None:
        """Write the registry to *path*: JSON when the name ends in
        ``.json``, Prometheus text exposition otherwise."""
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        if os.fspath(path).endswith(".json"):
            with open(path, "w") as fh:
                json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        else:
            with open(path, "w") as fh:
                fh.write(self.to_prometheus())

    def reset(self) -> None:
        """Drop every series and type registration (tests)."""
        with self._lock:
            self._kinds.clear()
            self._series.clear()


def _fmt(value: float) -> str:
    """Integers without the trailing ``.0``, floats via repr."""
    if value == int(value):
        return str(int(value))
    return repr(value)


#: The process-wide default registry the engines / cache / sweep loop
#: write to; :func:`registry` is the sanctioned accessor.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-local default :class:`MetricsRegistry`."""
    return _REGISTRY
