"""Fleet-wide observability: cross-process metric/span aggregation.

A sharded sweep (:mod:`repro.experiments.sharded`) runs one
:class:`~repro.obs.metrics.MetricsRegistry` and one tracer per worker
process -- by design nothing is shared, so without help every worker's
counters and spans die with the process.  This module is the help:

* :class:`MetricsDeltaSource` -- worker side.  Wraps a registry and
  emits **deltas** (counter/histogram increments, gauge last-values)
  between successive :meth:`~MetricsDeltaSource.delta` calls, each
  stamped with a monotonically increasing ``seq``.  Deltas are plain
  dicts, safe to pickle onto the shard wire.
* :class:`ClockSync` -- per-process monotonic-clock offset estimation.
  ``time.monotonic()`` timelines are process-local on some platforms;
  the coordinator samples ``(remote_mono, local_mono)`` pairs from
  register/heartbeat/delta frames and keeps the **minimum** observed
  ``local - remote`` (one-way delay only ever inflates the estimate,
  so the minimum is the tightest upper bound on the true skew).
* :class:`FleetAggregator` -- coordinator side.  Applies deltas into a
  labelled fleet registry (``worker_id``/``run_id`` on every series),
  **seq-fenced per worker** so a replayed or duplicated delta -- e.g.
  frames racing a worker-lost revocation -- never double-counts.
  Collects worker spans (they ride the result frames, which are
  already exactly-once fenced by the journal) and re-times them onto
  the coordinator's monotonic timeline so one Chrome/Perfetto trace
  shows the whole fleet.
* :class:`AdaptiveShardSizer` -- closes the loop: observed per-cell
  wall times feed a rolling window, and the coordinator asks it how
  many cells the next lease should carry to hit a target lease
  duration.  Observability driving scheduling, not just reporting.
* :class:`FleetPlane` -- the bundle the sweep runner owns: aggregator
  + periodic Prometheus refresh + final Prometheus/OTLP artifacts.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "MetricsDeltaSource",
    "ClockSync",
    "FleetAggregator",
    "AdaptiveShardSizer",
    "FleetPlane",
]

_SeriesKey = tuple


def _series_key(entry: dict) -> _SeriesKey:
    return (entry["name"], tuple(tuple(kv) for kv in entry["labels"]))


class MetricsDeltaSource:
    """Incremental snapshots of a registry, safe to resend-detect.

    Each :meth:`delta` call diffs the live registry against the last
    snapshot and returns ``{"seq": n, "series": [...]}`` containing
    only what changed -- counter and histogram entries carry
    *increments*, gauges carry their current value.  Returns ``None``
    when nothing changed, so idle workers send no frames.

    Thread-safe: the shard worker's heartbeat pump and its main loop
    both flush through one source.
    """

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry
        self._lock = threading.Lock()
        self._seq = 0
        self._last: dict[_SeriesKey, dict] = {}

    def delta(self) -> Optional[dict]:
        snap = self._registry.snapshot()
        with self._lock:
            changed: list[dict] = []
            for entry in snap["series"]:
                key = _series_key(entry)
                prev = self._last.get(key)
                diff = self._diff(entry, prev)
                if diff is not None:
                    changed.append(diff)
                self._last[key] = entry
            if not changed:
                return None
            self._seq += 1
            return {"seq": self._seq, "series": changed}

    @staticmethod
    def _diff(entry: dict, prev: Optional[dict]) -> Optional[dict]:
        kind = entry["kind"]
        head = {
            "name": entry["name"],
            "labels": entry["labels"],
            "kind": kind,
        }
        if kind == "counter":
            base = prev["value"] if prev else 0.0
            inc = entry["value"] - base
            if inc < 0:  # registry was reset mid-run; restart from 0
                inc = entry["value"]
            if inc == 0:
                return None
            head["value"] = inc
            return head
        if kind == "gauge":
            if prev is not None and prev["value"] == entry["value"]:
                return None
            head["value"] = entry["value"]
            return head
        # histogram: element-wise bucket-count increments
        base_counts = prev["counts"] if prev else [0] * len(entry["counts"])
        if prev is not None and prev["count"] == entry["count"]:
            return None
        counts = [n - b for n, b in zip(entry["counts"], base_counts)]
        if any(n < 0 for n in counts):  # reset mid-run
            counts = list(entry["counts"])
            base_sum, base_count = 0.0, 0
        else:
            base_sum = prev["sum"] if prev else 0.0
            base_count = prev["count"] if prev else 0
        head["buckets"] = entry["buckets"]
        head["counts"] = counts
        head["sum"] = entry["sum"] - base_sum
        head["count"] = entry["count"] - base_count
        return head


class ClockSync:
    """Per-process monotonic offset estimation, NTP-style one-way.

    ``offset(pid)`` maps a remote process's monotonic timeline onto the
    local one: ``local_time ~= remote_time + offset``.  Every
    observation is ``local_at_receipt - remote_at_send = skew + delay``
    with ``delay >= 0``, so the minimum over observations converges on
    the true skew from above.  Unknown pids map to offset ``0.0`` --
    on Linux ``CLOCK_MONOTONIC`` is system-wide and that is exact.
    """

    def __init__(self) -> None:
        self._offsets: dict[int, float] = {}

    def observe(
        self,
        pid: Optional[int],
        remote_mono: Optional[float],
        local_mono: Optional[float] = None,
    ) -> None:
        if pid is None or remote_mono is None:
            return
        local = time.monotonic() if local_mono is None else local_mono
        estimate = local - remote_mono
        prev = self._offsets.get(pid)
        if prev is None or estimate < prev:
            self._offsets[pid] = estimate

    def offset(self, pid: Optional[int]) -> float:
        return self._offsets.get(pid, 0.0)


class FleetAggregator:
    """Merges worker deltas and spans into one labelled view.

    * Metric deltas apply into :attr:`registry` with ``worker_id`` (and
      ``run_id`` when set) merged into every label set.  Deltas are
      fenced by their per-worker ``seq``: anything at or below the last
      applied seq is dropped and counted, so retried/duplicated frames
      are idempotent.
    * Spans accumulate with their (worker_id, shard_id) provenance;
      :meth:`spans_aligned` re-times them via :class:`ClockSync` and
      stamps ``worker_id``/``shard_id``/``run_id`` tags.

    Not thread-safe on its own; the shard coordinator drives it from
    its single dispatch loop.  :meth:`render` (called from the export
    refresh thread) only *reads* via registry snapshots, which take the
    registry lock.
    """

    def __init__(self, run_id: Optional[str] = None):
        self.run_id = run_id
        self.registry = MetricsRegistry()
        self.clock = ClockSync()
        self.deltas_applied = 0
        self.deltas_dropped = 0
        self._last_seq: dict[Any, int] = {}
        self._spans: list[dict] = []

    # -- clock ----------------------------------------------------------
    def observe_clock(
        self,
        pid: Optional[int],
        remote_mono: Optional[float],
        local_mono: Optional[float] = None,
    ) -> None:
        self.clock.observe(pid, remote_mono, local_mono)

    # -- metric deltas --------------------------------------------------
    def apply_delta(self, worker_id: Any, delta: Optional[dict]) -> bool:
        """Apply one worker delta; ``False`` when fenced as a duplicate."""
        if not delta or not delta.get("series"):
            return False
        seq = delta.get("seq")
        if seq is not None:
            last = self._last_seq.get(worker_id, 0)
            if seq <= last:
                self.deltas_dropped += 1
                return False
            self._last_seq[worker_id] = seq
        for entry in delta["series"]:
            self._apply_entry(entry, self._fleet_labels(worker_id))
        self.deltas_applied += 1
        return True

    def _fleet_labels(self, worker_id: Any) -> dict:
        labels = {"worker_id": str(worker_id)}
        if self.run_id:
            labels["run_id"] = self.run_id
        return labels

    def _apply_entry(self, entry: dict, extra: dict) -> None:
        labels = {k: v for k, v in entry["labels"]}
        for k, v in extra.items():
            labels.setdefault(k, v)
        name, kind = entry["name"], entry["kind"]
        if kind == "counter":
            self.registry.counter(name, **labels).inc(
                max(0.0, entry["value"])
            )
        elif kind == "gauge":
            self.registry.gauge(name, **labels).set(entry["value"])
        else:
            hist = self.registry.histogram(
                name, buckets=tuple(entry["buckets"]), **labels
            )
            if len(hist.counts) == len(entry["counts"]):
                for i, n in enumerate(entry["counts"]):
                    hist.counts[i] += n
            else:  # bucket shape changed underfoot; keep totals honest
                hist.counts[-1] += sum(entry["counts"])
            hist.sum += entry["sum"]
            hist.count += entry["count"]

    # -- spans ----------------------------------------------------------
    def add_spans(
        self,
        worker_id: Any,
        shard_id: Optional[int],
        spans: Iterable[dict],
    ) -> None:
        """Record spans harvested from a worker's (fenced) result frame."""
        for span in spans or ():
            rec = dict(span)
            tags = dict(rec.get("tags") or {})
            tags.setdefault("worker_id", str(worker_id))
            if shard_id is not None:
                tags.setdefault("shard_id", str(shard_id))
            if self.run_id:
                tags.setdefault("run_id", self.run_id)
            rec["tags"] = tags
            self._spans.append(rec)

    @property
    def span_count(self) -> int:
        return len(self._spans)

    def spans_aligned(self) -> list[dict]:
        """Collected spans, shifted onto the coordinator timeline."""
        return self.align(self._spans)

    def align(self, spans: Iterable[dict]) -> list[dict]:
        """Skew-align arbitrary span dicts by their ``pid`` and stamp
        the run id; spans from unknown pids pass through unshifted."""
        out = []
        for span in spans:
            rec = dict(span)
            offset = self.clock.offset(rec.get("pid"))
            if offset > 0:
                rec["start_s"] = rec.get("start_s", 0.0) + offset
            if self.run_id:
                tags = dict(rec.get("tags") or {})
                tags.setdefault("run_id", self.run_id)
                rec["tags"] = tags
            out.append(rec)
        return out

    # -- merged view ----------------------------------------------------
    def render(
        self,
        local: Optional[MetricsRegistry] = None,
        local_worker_id: str = "coordinator",
    ) -> MetricsRegistry:
        """A fresh registry merging the fleet series with a labelled
        copy of *local* (the coordinator's own registry)."""
        merged = MetricsRegistry()
        snapshots = [(self.registry.snapshot(), {})]
        if local is not None:
            extra = {"worker_id": local_worker_id}
            if self.run_id:
                extra["run_id"] = self.run_id
            snapshots.append((local.snapshot(), extra))
        for snap, extra in snapshots:
            for entry in snap["series"]:
                _absorb_absolute(merged, entry, extra)
        return merged


def _absorb_absolute(
    target: MetricsRegistry, entry: dict, extra: dict
) -> None:
    """Write a snapshot entry into *target* at its absolute value."""
    labels = {k: v for k, v in entry["labels"]}
    for k, v in extra.items():
        labels.setdefault(k, v)
    name, kind = entry["name"], entry["kind"]
    if kind == "counter":
        target.counter(name, **labels).inc(max(0.0, entry["value"]))
    elif kind == "gauge":
        target.gauge(name, **labels).set(entry["value"])
    else:
        hist = target.histogram(
            name, buckets=tuple(entry["buckets"]), **labels
        )
        hist.counts = list(entry["counts"])
        hist.sum = entry["sum"]
        hist.count = entry["count"]


class AdaptiveShardSizer:
    """Lease sizing from observed per-cell wall time.

    The coordinator's static default (``n_cells / (slots * 4)``) is a
    guess made before any cell has run.  This replaces the guess with a
    measurement: a rolling window of recent per-cell wall times, and
    ``suggest`` returns how many cells fit in ``target_lease_s`` at the
    window median.  Until :attr:`min_samples` observations arrive the
    default passes through unchanged, and the answer is always clamped
    to ``[min_cells, max_cells]`` -- a pathological measurement can
    skew a lease, never starve or flood one.
    """

    def __init__(
        self,
        target_lease_s: float = 5.0,
        window: int = 64,
        min_samples: int = 3,
        min_cells: int = 1,
        max_cells: int = 256,
    ):
        self.target_lease_s = float(target_lease_s)
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.min_cells = int(min_cells)
        self.max_cells = int(max_cells)
        if self.target_lease_s <= 0:
            raise ValueError("target_lease_s must be positive")
        if self.window < 1 or self.min_cells < 1:
            raise ValueError("window and min_cells must be >= 1")
        if self.max_cells < self.min_cells:
            raise ValueError("max_cells must be >= min_cells")
        self._walls: list[float] = []

    def observe(self, wall_s: Optional[float]) -> None:
        if wall_s is None or wall_s < 0:
            return
        self._walls.append(float(wall_s))
        if len(self._walls) > self.window:
            del self._walls[: len(self._walls) - self.window]

    @property
    def samples(self) -> int:
        return len(self._walls)

    def median_wall_s(self) -> Optional[float]:
        if not self._walls:
            return None
        ordered = sorted(self._walls)
        return ordered[len(ordered) // 2]

    def suggest(self, default: int) -> int:
        if len(self._walls) < self.min_samples:
            return default
        median = self.median_wall_s()
        if not median or median <= 0:
            return default
        size = int(self.target_lease_s / median)
        return max(self.min_cells, min(self.max_cells, max(1, size)))


class FleetPlane:
    """The sweep-level bundle: aggregator + exporters + refresh loop.

    Owned by :func:`repro.experiments.runner.run_sweep` when any fleet
    knob is set.  The aggregator is handed to the shard coordinator
    (serial and pooled sweeps leave it empty -- the local registry
    carries everything there); a daemon thread refreshes the Prometheus
    textfile every ``refresh_s``; :meth:`finalize` writes the final
    exposition, pushes to a gateway when configured, and emits one
    OTLP-JSON artifact carrying the merged metrics *and* the
    skew-aligned spans.
    """

    def __init__(
        self,
        run_id: str,
        *,
        prom_path: Optional[str] = None,
        prom_gateway: Optional[str] = None,
        otlp_path: Optional[str] = None,
        refresh_s: float = 5.0,
        local_registry: Optional[Callable[[], MetricsRegistry]] = None,
    ):
        from repro.obs.metrics import registry as _default_registry

        self.run_id = run_id
        self.aggregator = FleetAggregator(run_id=run_id)
        self.prom_path = prom_path
        self.prom_gateway = prom_gateway
        self.otlp_path = otlp_path
        self.refresh_s = max(0.05, float(refresh_s))
        self._local = local_registry or _default_registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.export_errors = 0
        self.refreshes = 0

    # -- rendering ------------------------------------------------------
    def render(self) -> MetricsRegistry:
        """The current merged fleet + coordinator registry."""
        return self.aggregator.render(local=self._local())

    def refresh(self) -> None:
        """One Prometheus export cycle (textfile and/or gateway push)."""
        if not (self.prom_path or self.prom_gateway):
            return
        from repro.obs import export

        merged = self.render()
        try:
            if self.prom_path:
                export.write_prometheus(self.prom_path, merged)
            if self.prom_gateway:
                export.push_prometheus(
                    self.prom_gateway, merged, job=self.run_id
                )
            self.refreshes += 1
        except OSError:
            # Exporters are best-effort side channels: a full disk or a
            # dead gateway must never take the sweep down with it.
            self.export_errors += 1

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None or not (
            self.prom_path or self.prom_gateway
        ):
            return
        self._thread = threading.Thread(
            target=self._loop, name="obs-fleet-export", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.refresh_s):
            self.refresh()

    def stop_refresh(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def finalize(self, spans: Optional[Iterable[dict]] = None) -> None:
        """Stop the refresh loop and write the final artifacts."""
        self.stop_refresh()
        self.refresh()
        if self.otlp_path:
            from repro.obs import export

            aligned = self.aggregator.align(list(spans or ()))
            try:
                export.write_otlp(
                    self.otlp_path,
                    registry=self.render(),
                    spans=aligned,
                    resource={"service.name": "repro", "run_id": self.run_id},
                )
            except OSError:
                self.export_errors += 1
