"""Lightweight span tracing for engine runs and sweeps.

A *span* is one timed phase of a run -- trace acquisition, a protocol's
replay pass, the audit battery, an observer's ``on_run_end`` work --
recorded with a monotonic start, a duration, the recording process and
thread, and free-form tags.  Spans nest: each one knows its
slash-joined ancestry path (``run/trace-acquire``), so a flat span list
reconstructs the phase tree without object references, survives
``dataclasses.asdict`` / JSON round-trips, and crosses process
boundaries (sweep workers ship their spans home inside
:class:`~repro.obs.telemetry.TaskTelemetry`).

The recorder is :class:`Tracer`: ``with tracer.span("replay",
protocol="BCS") as sp: ...`` times the block and appends one
:class:`Span`; the context target is the live span, so code can stamp
tags discovered mid-phase (``sp.tags["source"] = "disk"``).  Engines
open spans only when a run's observer stack carries a tracer (see
:class:`repro.engine.observers.TimingObserver`), so untraced runs pay
nothing.

Two exports render a span list:

* :func:`write_chrome_trace` -- Chrome trace-event JSON (``ph: "X"``
  complete events), loadable in Perfetto / ``chrome://tracing``; pids
  and tids map to track groups, so a parallel sweep's workers appear
  as separate process tracks.
* :func:`phase_table` -- a text flamegraph: phases aggregated by path,
  indented by depth, with call counts, total and self time.

Timestamps are ``time.monotonic()`` seconds.  On Linux that clock is
system-wide (CLOCK_MONOTONIC), so spans recorded by concurrent worker
processes of one sweep land on one consistent timeline; on platforms
where the monotonic clock is per-process, cross-process alignment is
approximate but per-process nesting stays exact.

This module is dependency-free (stdlib only) and imports nothing from
the rest of the package, so any layer -- engines, cache, sweep
supervisor -- can use it without import cycles.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace_events",
    "phase_table",
    "write_chrome_trace",
]


@dataclass(slots=True)
class Span:
    """One completed timed phase."""

    #: Leaf name of the phase (``"trace-acquire"``).
    name: str
    #: Slash-joined ancestry, root first (``"run/trace-acquire"``).
    path: str
    #: ``time.monotonic()`` at entry, seconds.
    start_s: float
    duration_s: float
    pid: int
    #: ``threading.get_ident()`` of the recording thread.
    tid: int
    #: Nesting depth (root spans are 0).
    depth: int
    tags: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Plain-JSON form (telemetry / journal emission)."""
        return asdict(self)


class Tracer:
    """Thread-safe span recorder.

    Each thread keeps its own nesting stack (spans opened on different
    threads never adopt each other as parents); the finished-span list
    is shared and append-locked.  A tracer may record several engine
    runs back to back -- spans carry absolute timestamps, so one trace
    file can hold a whole serial sweep.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def __len__(self) -> int:
        return len(self.spans)

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        """Time the enclosed block as one span named *name*.

        Yields the live :class:`Span` so the block can add tags; the
        duration is stamped and the span appended on exit (exceptions
        included -- a failed phase still shows up, with its true
        duration).
        """
        stack = self._stack()
        path = "/".join(stack + [name])
        sp = Span(
            name=name,
            path=path,
            start_s=time.monotonic(),
            duration_s=0.0,
            pid=os.getpid(),
            tid=threading.get_ident(),
            depth=len(stack),
            tags=dict(tags),
        )
        stack.append(name)
        try:
            yield sp
        finally:
            sp.duration_s = time.monotonic() - sp.start_s
            stack.pop()
            with self._lock:
                self.spans.append(sp)

    def as_dicts(self) -> list[dict[str, Any]]:
        """Every finished span as a plain dict, recording order."""
        with self._lock:
            return [sp.as_dict() for sp in self.spans]

    def clear(self) -> None:
        """Drop recorded spans (open spans are unaffected)."""
        with self._lock:
            self.spans.clear()


SpanLike = Union[Span, dict]


def _span_dict(span: SpanLike) -> dict[str, Any]:
    return span.as_dict() if isinstance(span, Span) else span


def chrome_trace_events(spans: Iterable[SpanLike]) -> list[dict[str, Any]]:
    """Chrome trace-event dicts (``ph: "X"`` complete events).

    Timestamps convert to microseconds on the span's own monotonic
    timeline; pid/tid pass through so viewers group spans by recording
    process and thread, and nesting falls out of the time containment.
    """
    events = []
    for span in spans:
        d = _span_dict(span)
        events.append(
            {
                "name": d["name"],
                "cat": "repro",
                "ph": "X",
                "ts": round(d["start_s"] * 1e6, 3),
                "dur": round(d["duration_s"] * 1e6, 3),
                "pid": d["pid"],
                "tid": d["tid"],
                "args": dict(d.get("tags") or {}),
            }
        )
    return events


def write_chrome_trace(path, spans: Iterable[SpanLike]) -> None:
    """Write *spans* as a Chrome trace-event JSON object to *path*.

    The file is the ``{"traceEvents": [...]}`` object form, which both
    Perfetto and ``chrome://tracing`` load directly.
    """
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")


def phase_table(spans: Iterable[SpanLike]) -> str:
    """Text flamegraph: spans aggregated by path, indented by depth.

    One row per distinct path with call count, total time, and *self*
    time (total minus the time spent in child phases), ordered
    depth-first so the indentation reads as the phase tree.  Spans
    from several processes/threads aggregate together -- the table
    answers "where did the time go", not "when".
    """
    totals: dict[str, float] = {}
    counts: dict[str, int] = {}
    order: list[str] = []
    for span in spans:
        d = _span_dict(span)
        path = d["path"]
        if path not in totals:
            totals[path] = 0.0
            counts[path] = 0
            order.append(path)
        totals[path] += d["duration_s"]
        counts[path] += 1
    if not totals:
        return "(no spans recorded)"

    children: dict[str, float] = {}
    for path, total in totals.items():
        parent = path.rsplit("/", 1)[0] if "/" in path else None
        if parent is not None:
            children[parent] = children.get(parent, 0.0) + total

    # Depth-first order: sort paths so each parent precedes its
    # children and siblings keep first-recorded order.
    first_seen = {path: i for i, path in enumerate(order)}
    ordered = sorted(
        totals,
        key=lambda p: [
            first_seen["/".join(p.split("/")[: i + 1])]
            for i in range(p.count("/") + 1)
        ],
    )
    grand = sum(t for p, t in totals.items() if "/" not in p) or 1.0
    width = max(len("  " * p.count("/") + p.rsplit("/", 1)[-1]) for p in ordered)
    width = max(width, len("phase"))
    lines = [
        f"{'phase':<{width}} {'calls':>6} {'total_ms':>10} "
        f"{'self_ms':>10} {'%':>6}"
    ]
    for path in ordered:
        depth = path.count("/")
        label = "  " * depth + path.rsplit("/", 1)[-1]
        total = totals[path]
        self_s = max(0.0, total - children.get(path, 0.0))
        lines.append(
            f"{label:<{width}} {counts[path]:>6} {1e3 * total:>10.3f} "
            f"{1e3 * self_s:>10.3f} {100 * total / grand:>5.1f}%"
        )
    return "\n".join(lines)
