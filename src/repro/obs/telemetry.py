"""Structured run telemetry for the sweep engine.

Every sweep task -- one ``(t_switch, seed)`` pair -- produces one
:class:`TaskTelemetry` record: how long the task took, where its trace
came from (memory cache, disk cache, fresh generation), how big the
trace was, which worker process ran it, and the checkpoint counters of
every protocol evaluated on it.  The records ride back through the
process pool with the run outcomes and are reassembled in deterministic
(point, seed) order, so two identical sweeps produce identically
ordered telemetry (the wall times differ, the structure does not).

Emission is JSONL -- one JSON object per line, one line per task --
because it appends cleanly (a crashed sweep keeps the records written
so far), streams through standard tooling (``jq``, ``pandas``), and
needs no schema migration when fields are added.

:func:`summarize` aggregates a record list into the operational
headline numbers: total busy time, worker utilization (busy time over
pool capacity), and the cache-tier breakdown that tells whether a sweep
was generation-bound or replay-bound.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Iterable, Optional, Sequence

#: Where a task's trace came from (``TaskTelemetry.trace_source``).
TRACE_SOURCES = ("memory", "disk", "generated", "uncached")


@dataclass(slots=True)
class TaskTelemetry:
    """Operational record of one (t_switch, seed) sweep task."""

    t_switch: float
    seed: int
    #: Wall-clock seconds the whole task took (trace fetch + replays +
    #: audit when enabled).
    wall_time_s: float
    #: "memory" / "disk" (cache tiers), "generated" (cache miss) or
    #: "uncached" (cache bypassed entirely).
    trace_source: str
    #: Convenience flag: True iff the trace came out of a cache tier.
    cache_hit: bool
    #: Size of the replayed trace.
    n_events: int
    n_sends: int
    #: Worker process that ran the task (the parent pid on serial runs).
    pid: int
    #: Per-protocol checkpoint counters:
    #: name -> {n_total, n_basic, n_forced, n_replaced}.
    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Audit violations found on this task (0 when audit is off).
    n_violations: int = 0
    #: Dispatch attempts the supervisor needed for this task (1 = first
    #: try succeeded; >1 means timeouts/crashes forced retries).
    attempts: int = 1
    #: Cache health deltas this task observed: disk entries evicted as
    #: corrupt / pre-digest entries upgraded in place while serving
    #: this task's trace (0 when the cache is off or healthy).
    cache_corrupt_evictions: int = 0
    cache_legacy_upgrades: int = 0
    #: Phase spans recorded by a :class:`~repro.obs.tracing.Tracer`
    #: during this task (plain span dicts; empty unless tracing is on).
    spans: list[dict[str, Any]] = field(default_factory=list)

    def as_json_dict(self) -> dict[str, Any]:
        """Plain-JSON form (one telemetry JSONL line)."""
        return asdict(self)


@dataclass(slots=True)
class TelemetrySummary:
    """Aggregate view of one sweep's telemetry records."""

    n_tasks: int
    #: Sum of per-task wall times (total busy time across workers).
    total_task_wall_s: float
    #: Wall time of the whole sweep as seen by the caller.
    sweep_wall_s: float
    #: Pool width the sweep ran with (1 = serial).
    workers: int
    #: total busy / (sweep wall x workers); 1.0 = perfectly packed pool.
    utilization: float
    #: trace_source -> task count.
    trace_sources: dict[str, int] = field(default_factory=dict)
    #: pid -> busy seconds (worker load balance).
    busy_by_pid: dict[int, float] = field(default_factory=dict)
    n_violations: int = 0
    #: Re-dispatches across successful tasks (sum of attempts - 1).
    n_retries: int = 0
    #: Tasks quarantined after exhausting their retries (grid holes).
    n_quarantined: int = 0
    #: Tasks served from a resume journal instead of executed.
    n_resumed: int = 0
    #: Cache health across the sweep's tasks (sums of the per-task
    #: deltas): corrupt entries evicted, legacy entries upgraded.
    cache_corrupt_evictions: int = 0
    cache_legacy_upgrades: int = 0

    def __str__(self) -> str:
        src = " ".join(
            f"{name}={self.trace_sources.get(name, 0)}"
            for name in TRACE_SOURCES
            if self.trace_sources.get(name)
        )
        resilience = ""
        if self.n_retries or self.n_quarantined or self.n_resumed:
            resilience = (
                f"; retries: {self.n_retries}, "
                f"quarantined: {self.n_quarantined}, "
                f"resumed: {self.n_resumed}"
            )
        cache_health = ""
        if self.cache_corrupt_evictions or self.cache_legacy_upgrades:
            cache_health = (
                f"; cache health: "
                f"corrupt_evictions={self.cache_corrupt_evictions}, "
                f"legacy_upgrades={self.cache_legacy_upgrades}"
            )
        return (
            f"{self.n_tasks} tasks in {self.sweep_wall_s:.2f}s wall "
            f"({self.total_task_wall_s:.2f}s busy, {self.workers} worker(s), "
            f"{100 * self.utilization:.0f}% utilization); "
            f"trace sources: {src or 'none'}; "
            f"violations: {self.n_violations}"
            f"{resilience}"
            f"{cache_health}"
        )


def summarize(
    records: Sequence[TaskTelemetry],
    sweep_wall_s: float = 0.0,
    workers: int = 1,
    n_quarantined: int = 0,
    n_resumed: int = 0,
) -> TelemetrySummary:
    """Aggregate *records* into a :class:`TelemetrySummary`.

    ``workers`` counts execution lanes, so serial runs pass 1 (the
    sweep configs' ``workers=0`` convention is normalised by callers).
    ``n_quarantined`` / ``n_resumed`` come from the sweep supervisor --
    quarantined tasks have no telemetry record to count from.
    """
    workers = max(1, workers)
    total = sum(r.wall_time_s for r in records)
    sources: dict[str, int] = {}
    busy: dict[int, float] = {}
    for r in records:
        sources[r.trace_source] = sources.get(r.trace_source, 0) + 1
        busy[r.pid] = busy.get(r.pid, 0.0) + r.wall_time_s
    utilization = (
        total / (sweep_wall_s * workers) if sweep_wall_s > 0 else 0.0
    )
    return TelemetrySummary(
        n_tasks=len(records),
        total_task_wall_s=total,
        sweep_wall_s=sweep_wall_s,
        workers=workers,
        utilization=utilization,
        trace_sources=sources,
        busy_by_pid=busy,
        n_violations=sum(r.n_violations for r in records),
        n_retries=sum(max(0, r.attempts - 1) for r in records),
        n_quarantined=n_quarantined,
        n_resumed=n_resumed,
        cache_corrupt_evictions=sum(
            r.cache_corrupt_evictions for r in records
        ),
        cache_legacy_upgrades=sum(r.cache_legacy_upgrades for r in records),
    )


def write_jsonl(
    records: Iterable[TaskTelemetry],
    path,
    summary: Optional[TelemetrySummary] = None,
) -> None:
    """Write one JSON object per record to *path* (overwrites).

    When *summary* is given it is appended as a final line tagged
    ``{"kind": "summary", ...}`` so stream consumers can tell it apart
    from task records (which carry no ``kind`` key).
    """
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps(record.as_json_dict(), sort_keys=True))
            fh.write("\n")
        if summary is not None:
            payload = {"kind": "summary", **asdict(summary)}
            # JSON objects key by string; pids arrive as ints.
            payload["busy_by_pid"] = {
                str(k): v for k, v in summary.busy_by_pid.items()
            }
            fh.write(json.dumps(payload, sort_keys=True))
            fh.write("\n")


def read_jsonl(path) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file back into dicts (summary included)."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def telemetry_table(records: Sequence[TaskTelemetry]) -> str:
    """Fixed-width per-task table for terminal reports."""
    header = (
        f"{'t_switch':>9} {'seed':>5} {'wall_s':>8} {'source':>9} "
        f"{'events':>8} {'sends':>7} {'viol':>5}  counters"
    )
    lines = [header]
    for r in records:
        counters = " ".join(
            f"{name}={c.get('n_total', 0)}" for name, c in r.counters.items()
        )
        if r.cache_corrupt_evictions or r.cache_legacy_upgrades:
            # Cache-health incidents are rare; flag them in-row so an
            # operator reading the table sees them without jq.
            counters += (
                f"  [cache: corrupt_evictions={r.cache_corrupt_evictions}"
                f" legacy_upgrades={r.cache_legacy_upgrades}]"
            )
        lines.append(
            f"{r.t_switch:>9g} {r.seed:>5} {r.wall_time_s:>8.3f} "
            f"{r.trace_source:>9} {r.n_events:>8} {r.n_sends:>7} "
            f"{r.n_violations:>5}  {counters}"
        )
    return "\n".join(lines)


def tail_summary(records: Sequence[dict]) -> str:
    """Live summary of a telemetry / outcome / heartbeat JSONL stream.

    Backs ``repro tail``: *records* are parsed JSONL dicts of any mix
    the observability layer emits -- task telemetry lines (no ``kind``
    key), :class:`~repro.engine.observers.StreamObserver` ``outcome``
    lines, sweep ``heartbeat`` records and the trailing ``summary``
    line -- and the result is a short multi-line status report.
    """
    tasks = [r for r in records if "kind" not in r and "wall_time_s" in r]
    outcomes = [r for r in records if r.get("kind") == "outcome"]
    heartbeats = [r for r in records if r.get("kind") == "heartbeat"]
    summaries = [r for r in records if r.get("kind") == "summary"]

    lines = [
        f"{len(records)} records: {len(tasks)} task(s), "
        f"{len(outcomes)} outcome(s), {len(heartbeats)} heartbeat(s)"
    ]
    if tasks:
        wall = [float(r.get("wall_time_s", 0.0)) for r in tasks]
        hits = sum(1 for r in tasks if r.get("cache_hit"))
        retries = sum(max(0, int(r.get("attempts", 1)) - 1) for r in tasks)
        lines.append(
            f"tasks: mean wall {sum(wall) / len(wall):.3f}s, "
            f"cache hits {hits}/{len(tasks)}, retries {retries}, "
            f"violations {sum(int(r.get('n_violations', 0)) for r in tasks)}"
        )
        totals: dict[str, list[int]] = {}
        for r in tasks:
            for name, c in (r.get("counters") or {}).items():
                totals.setdefault(name, []).append(int(c.get("n_total", 0)))
        if totals:
            lines.append(
                "N_tot means: "
                + " ".join(
                    f"{name}={sum(v) / len(v):.1f}"
                    for name, v in sorted(totals.items())
                )
            )
    if outcomes:
        totals = {}
        for r in outcomes:
            if r.get("protocol") is not None and "n_total" in r:
                totals.setdefault(str(r["protocol"]), []).append(
                    int(r["n_total"])
                )
        if totals:
            lines.append(
                "outcomes N_tot means: "
                + " ".join(
                    f"{name}={sum(v) / len(v):.1f}"
                    for name, v in sorted(totals.items())
                )
            )
    if heartbeats:
        hb = heartbeats[-1]
        eta = hb.get("eta_s")
        lines.append(
            f"last heartbeat: {hb.get('done', '?')}/{hb.get('total', '?')} "
            f"tasks, rate {hb.get('rate_per_s', 0.0):.2f}/s"
            + (f", eta {eta:.0f}s" if isinstance(eta, (int, float)) else "")
        )
    if summaries:
        s = summaries[-1]
        lines.append(
            f"summary: {s.get('n_tasks', '?')} tasks in "
            f"{s.get('sweep_wall_s', 0.0):.2f}s wall, "
            f"{s.get('n_retries', 0)} retries, "
            f"{s.get('n_quarantined', 0)} quarantined"
        )
    return "\n".join(lines)
