"""Metric/span exporters: Prometheus textfile + push-gateway, OTLP-JSON.

Stdlib-only implementations of the two export dialects an operator is
likely to already run collectors for:

* **Prometheus** -- :func:`write_prometheus` renders a registry with
  :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus` and writes
  it atomically (temp file + ``os.replace``) so the node-exporter
  textfile collector never scrapes a torn file;
  :func:`push_prometheus` PUTs the same exposition to a push-gateway's
  ``/metrics/job/<job>`` endpoint via :mod:`urllib`.
* **OTLP-JSON** -- :func:`otlp_metrics` / :func:`otlp_spans` build the
  OpenTelemetry protocol JSON encoding (``resourceMetrics`` /
  ``resourceSpans``) from a registry and a list of span dicts, and
  :func:`write_otlp` delivers the payload to a file or POSTs it to an
  ``http(s)://`` endpoint (an OTLP/HTTP collector's ``/v1/metrics`` --
  the payload bundles both sections, which file-based tooling and the
  collector's JSON receiver both accept).

Monotonic span timestamps are anchored to the wall clock once per
export (``time.time_ns() - monotonic_ns``), so span times are honest
unix-nanos without any per-span wall-clock reads on the hot path.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import urllib.parse
import urllib.request
from typing import Any, Iterable, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "write_prometheus",
    "push_prometheus",
    "otlp_metrics",
    "otlp_spans",
    "otlp_payload",
    "write_otlp",
]


# -- Prometheus ---------------------------------------------------------
def write_prometheus(path, registry: MetricsRegistry) -> str:
    """Atomically write *registry*'s text exposition to *path*.

    Returns the rendered exposition.  Atomic rename keeps textfile
    collectors (and humans mid-``cat``) from ever seeing a torn write.
    """
    text = registry.to_prometheus()
    path = os.fspath(path)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(text)
    os.replace(tmp, path)
    return text


def push_prometheus(
    gateway_url: str,
    registry: MetricsRegistry,
    job: str = "repro",
    timeout_s: float = 5.0,
) -> int:
    """PUT the exposition to a push-gateway; returns the HTTP status.

    *gateway_url* is the gateway base (``http://host:9091``); the
    standard ``/metrics/job/<job>`` grouping path is appended.
    """
    url = gateway_url.rstrip("/") + "/metrics/job/" + urllib.parse.quote(
        job, safe=""
    )
    req = urllib.request.Request(
        url,
        data=registry.to_prometheus().encode(),
        method="PUT",
        headers={"Content-Type": "text/plain; version=0.0.4"},
    )
    with urllib.request.urlopen(req, timeout=timeout_s) as resp:
        return resp.status


# -- OTLP-JSON ----------------------------------------------------------
def _otlp_attributes(labels: dict) -> list[dict]:
    return [
        {"key": str(k), "value": {"stringValue": str(v)}}
        for k, v in sorted(labels.items())
    ]


def _wall_anchor_ns() -> int:
    """unix-nanos at monotonic zero: ``wall = mono_s * 1e9 + anchor``."""
    return time.time_ns() - int(time.monotonic() * 1e9)


def otlp_metrics(
    registry: MetricsRegistry,
    resource: Optional[dict] = None,
    now_ns: Optional[int] = None,
) -> dict:
    """The registry as an OTLP-JSON ``resourceMetrics`` section."""
    now = time.time_ns() if now_ns is None else now_ns
    snap = registry.snapshot()
    by_name: dict[tuple[str, str], list[dict]] = {}
    for entry in snap["series"]:
        by_name.setdefault((entry["name"], entry["kind"]), []).append(entry)

    metrics = []
    for (name, kind), entries in sorted(by_name.items()):
        if kind == "counter":
            points = [
                {
                    "asDouble": e["value"],
                    "timeUnixNano": str(now),
                    "attributes": _otlp_attributes(dict(e["labels"])),
                }
                for e in entries
            ]
            metrics.append(
                {
                    "name": name,
                    "sum": {
                        "aggregationTemporality": 2,  # CUMULATIVE
                        "isMonotonic": True,
                        "dataPoints": points,
                    },
                }
            )
        elif kind == "gauge":
            points = [
                {
                    "asDouble": e["value"],
                    "timeUnixNano": str(now),
                    "attributes": _otlp_attributes(dict(e["labels"])),
                }
                for e in entries
            ]
            metrics.append({"name": name, "gauge": {"dataPoints": points}})
        else:
            points = [
                {
                    "count": str(e["count"]),
                    "sum": e["sum"],
                    "bucketCounts": [str(n) for n in e["counts"]],
                    "explicitBounds": list(e["buckets"]),
                    "timeUnixNano": str(now),
                    "attributes": _otlp_attributes(dict(e["labels"])),
                }
                for e in entries
            ]
            metrics.append(
                {
                    "name": name,
                    "histogram": {
                        "aggregationTemporality": 2,
                        "dataPoints": points,
                    },
                }
            )
    return {
        "resourceMetrics": [
            {
                "resource": {
                    "attributes": _otlp_attributes(resource or {})
                },
                "scopeMetrics": [
                    {"scope": {"name": "repro.obs"}, "metrics": metrics}
                ],
            }
        ]
    }


def _span_id(span: dict, index: int) -> str:
    basis = (
        f'{span.get("pid")}|{span.get("tid")}|{span.get("path")}'
        f'|{span.get("start_s")}|{span.get("duration_s")}|{index}'
    )
    return hashlib.sha256(basis.encode()).hexdigest()[:16]


def otlp_spans(
    spans: Iterable[dict],
    resource: Optional[dict] = None,
    trace_id: Optional[str] = None,
    anchor_ns: Optional[int] = None,
) -> dict:
    """Span dicts (see :meth:`repro.obs.tracing.Span.as_dict`) as an
    OTLP-JSON ``resourceSpans`` section.

    Parent linkage is rebuilt per ``(pid, tid)`` from span depth and
    time containment -- the same nesting the tracer recorded.  All
    spans share one ``traceId`` (one export = one trace), derived from
    *resource* unless given.
    """
    anchor = _wall_anchor_ns() if anchor_ns is None else anchor_ns
    if trace_id is None:
        basis = json.dumps(resource or {}, sort_keys=True)
        trace_id = hashlib.sha256(basis.encode()).hexdigest()[:32]

    spans = list(spans)
    # (pid, tid) -> stack of (depth, span_id) for parent resolution;
    # within a thread the tracer emits spans in completion order, so
    # sort by start to rebuild the nesting deterministically.
    order = sorted(
        range(len(spans)),
        key=lambda i: (
            spans[i].get("pid") or 0,
            spans[i].get("tid") or 0,
            spans[i].get("start_s") or 0.0,
            spans[i].get("depth") or 0,
        ),
    )
    ids = [_span_id(spans[i], i) for i in range(len(spans))]
    parents: dict[int, str] = {}
    stacks: dict[tuple, list[tuple[int, str, float]]] = {}
    for i in order:
        span = spans[i]
        key = (span.get("pid"), span.get("tid"))
        depth = span.get("depth") or 0
        start = span.get("start_s") or 0.0
        stack = stacks.setdefault(key, [])
        while stack and (
            stack[-1][0] >= depth or stack[-1][2] <= start
        ):
            stack.pop()
        if stack:
            parents[i] = stack[-1][1]
        end = start + (span.get("duration_s") or 0.0)
        stack.append((depth, ids[i], end))

    out = []
    for i, span in enumerate(spans):
        start_s = span.get("start_s") or 0.0
        end_s = start_s + (span.get("duration_s") or 0.0)
        rec = {
            "traceId": trace_id,
            "spanId": ids[i],
            "name": span.get("name") or span.get("path") or "span",
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(anchor + int(start_s * 1e9)),
            "endTimeUnixNano": str(anchor + int(end_s * 1e9)),
            "attributes": _otlp_attributes(
                {
                    "path": span.get("path"),
                    "pid": span.get("pid"),
                    "tid": span.get("tid"),
                    **(span.get("tags") or {}),
                }
            ),
        }
        if i in parents:
            rec["parentSpanId"] = parents[i]
        out.append(rec)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": _otlp_attributes(resource or {})
                },
                "scopeSpans": [
                    {"scope": {"name": "repro.obs"}, "spans": out}
                ],
            }
        ]
    }


def otlp_payload(
    registry: Optional[MetricsRegistry] = None,
    spans: Optional[Iterable[dict]] = None,
    resource: Optional[dict] = None,
) -> dict:
    """One OTLP-JSON document bundling metrics and spans."""
    payload: dict[str, Any] = {}
    if registry is not None:
        payload.update(otlp_metrics(registry, resource=resource))
    if spans is not None:
        payload.update(otlp_spans(spans, resource=resource))
    return payload


def write_otlp(
    dest,
    registry: Optional[MetricsRegistry] = None,
    spans: Optional[Iterable[dict]] = None,
    resource: Optional[dict] = None,
    timeout_s: float = 5.0,
) -> dict:
    """Deliver an OTLP-JSON payload to *dest* and return it.

    *dest* starting with ``http://``/``https://`` is POSTed as
    ``application/json``; anything else is treated as a file path and
    written atomically.
    """
    payload = otlp_payload(registry, spans, resource)
    dest = os.fspath(dest)
    body = json.dumps(payload, sort_keys=True)
    if dest.startswith(("http://", "https://")):
        req = urllib.request.Request(
            dest,
            data=body.encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=timeout_s):
            pass
    else:
        parent = os.path.dirname(dest)
        if parent:
            os.makedirs(parent, exist_ok=True)
        tmp = dest + ".tmp"
        with open(tmp, "w") as fh:
            fh.write(body + "\n")
        os.replace(tmp, dest)
    return payload
