"""Observability: auditing, telemetry, span tracing and metrics.

* :mod:`repro.obs.audit` -- the consistency-oracle audit
  (:class:`AuditViolation`, :func:`audit_trace`,
  :func:`run_audit_grid`) that proves the fast replay/sweep paths
  still produce paper-correct checkpoints.
* :mod:`repro.obs.telemetry` -- per-(point, seed) run telemetry
  (:class:`TaskTelemetry`), JSONL emission and aggregation.
* :mod:`repro.obs.tracing` -- nested span tracing of engine phases
  (:class:`Tracer`, :class:`Span`), Chrome trace-event export and the
  text phase table.
* :mod:`repro.obs.metrics` -- process-local counters / gauges /
  histograms (:class:`MetricsRegistry`), JSON and Prometheus dumps.
* :mod:`repro.obs.fleet` -- cross-process aggregation: metric deltas,
  clock-skew span alignment, adaptive shard sizing
  (:class:`FleetAggregator`, :class:`AdaptiveShardSizer`,
  :class:`FleetPlane`).
* :mod:`repro.obs.export` -- Prometheus textfile / push-gateway and
  OTLP-JSON exporters (:func:`write_prometheus`, :func:`write_otlp`).
* :mod:`repro.obs.dash` -- the live TTY sweep dashboard and the
  rotation-aware JSONL follower (:func:`render_dashboard`,
  :class:`JsonlFollower`).

This package resolves its re-exports lazily (PEP 562): the
dependency-free leaves (:mod:`~repro.obs.tracing`,
:mod:`~repro.obs.metrics`) stay importable from low layers (the trace
cache, the engines) without dragging in :mod:`~repro.obs.audit`'s
engine dependency -- importing ``repro.obs.metrics`` must never import
``repro.engine``.
"""

from typing import TYPE_CHECKING

#: attribute -> home submodule, resolved on first access.
_EXPORTS = {
    # audit
    "AuditGridResult": "audit",
    "AuditViolation": "audit",
    "BROKEN_RECOVERY_LINE": "audit",
    "COUNTER_MISMATCH": "audit",
    "FUSED_DIVERGENCE": "audit",
    "INDEX_MONOTONICITY": "audit",
    "ORPHAN_MESSAGE": "audit",
    "audit_trace": "audit",
    "check_protocol_invariants": "audit",
    "run_audit_grid": "audit",
    # telemetry
    "TaskTelemetry": "telemetry",
    "TelemetrySummary": "telemetry",
    "read_jsonl": "telemetry",
    "summarize": "telemetry",
    "tail_summary": "telemetry",
    "telemetry_table": "telemetry",
    "write_jsonl": "telemetry",
    # tracing
    "Span": "tracing",
    "Tracer": "tracing",
    "chrome_trace_events": "tracing",
    "phase_table": "tracing",
    "write_chrome_trace": "tracing",
    # metrics
    "MetricsRegistry": "metrics",
    "registry": "metrics",
    # fleet
    "AdaptiveShardSizer": "fleet",
    "ClockSync": "fleet",
    "FleetAggregator": "fleet",
    "FleetPlane": "fleet",
    "MetricsDeltaSource": "fleet",
    # export
    "otlp_metrics": "export",
    "otlp_payload": "export",
    "otlp_spans": "export",
    "push_prometheus": "export",
    "write_otlp": "export",
    "write_prometheus": "export",
    # dash
    "JsonlFollower": "dash",
    "render_dashboard": "dash",
    "run_dashboard": "dash",
    "sparkline": "dash",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static-analysis convenience
    from repro.obs.audit import (  # noqa: F401
        BROKEN_RECOVERY_LINE,
        COUNTER_MISMATCH,
        FUSED_DIVERGENCE,
        INDEX_MONOTONICITY,
        ORPHAN_MESSAGE,
        AuditGridResult,
        AuditViolation,
        audit_trace,
        check_protocol_invariants,
        run_audit_grid,
    )
    from repro.obs.dash import (  # noqa: F401
        JsonlFollower,
        render_dashboard,
        run_dashboard,
        sparkline,
    )
    from repro.obs.export import (  # noqa: F401
        otlp_metrics,
        otlp_payload,
        otlp_spans,
        push_prometheus,
        write_otlp,
        write_prometheus,
    )
    from repro.obs.fleet import (  # noqa: F401
        AdaptiveShardSizer,
        ClockSync,
        FleetAggregator,
        FleetPlane,
        MetricsDeltaSource,
    )
    from repro.obs.metrics import MetricsRegistry, registry  # noqa: F401
    from repro.obs.telemetry import (  # noqa: F401
        TaskTelemetry,
        TelemetrySummary,
        read_jsonl,
        summarize,
        tail_summary,
        telemetry_table,
        write_jsonl,
    )
    from repro.obs.tracing import (  # noqa: F401
        Span,
        Tracer,
        chrome_trace_events,
        phase_table,
        write_chrome_trace,
    )


def __getattr__(name):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(f"repro.obs.{module}"), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
