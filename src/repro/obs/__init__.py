"""Observability: invariant auditing + structured run telemetry.

* :mod:`repro.obs.audit` -- the consistency-oracle audit
  (:class:`AuditViolation`, :func:`audit_trace`,
  :func:`run_audit_grid`) that proves the fast replay/sweep paths
  still produce paper-correct checkpoints.
* :mod:`repro.obs.telemetry` -- per-(point, seed) run telemetry
  (:class:`TaskTelemetry`), JSONL emission and aggregation.
"""

from repro.obs.audit import (
    BROKEN_RECOVERY_LINE,
    COUNTER_MISMATCH,
    FUSED_DIVERGENCE,
    INDEX_MONOTONICITY,
    ORPHAN_MESSAGE,
    AuditGridResult,
    AuditViolation,
    audit_trace,
    check_protocol_invariants,
    run_audit_grid,
)
from repro.obs.telemetry import (
    TaskTelemetry,
    TelemetrySummary,
    read_jsonl,
    summarize,
    telemetry_table,
    write_jsonl,
)

__all__ = [
    "AuditGridResult",
    "AuditViolation",
    "BROKEN_RECOVERY_LINE",
    "COUNTER_MISMATCH",
    "FUSED_DIVERGENCE",
    "INDEX_MONOTONICITY",
    "ORPHAN_MESSAGE",
    "TaskTelemetry",
    "TelemetrySummary",
    "audit_trace",
    "check_protocol_invariants",
    "read_jsonl",
    "run_audit_grid",
    "summarize",
    "telemetry_table",
    "write_jsonl",
]
