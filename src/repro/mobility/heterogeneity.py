"""Host heterogeneity: the paper's H parameter.

``H`` is the fraction of *fast* hosts whose mean cell-residence time is
``T_switch / fast_factor`` (paper: factor 10); the remaining hosts use
``T_switch``.  The figures sweep ``T_switch`` of the **slowest** hosts
on the x-axis.
"""

from __future__ import annotations


def split_fast_slow(n_hosts: int, heterogeneity: float) -> tuple[list[int], list[int]]:
    """Partition host ids into (fast, slow) per the H fraction.

    The first ``round(H * n)`` hosts are the fast ones -- a
    deterministic choice so that seeded runs are reproducible and
    protocols see identical mobility across comparisons.
    """
    if not 0.0 <= heterogeneity <= 1.0:
        raise ValueError(f"heterogeneity must be in [0, 1], got {heterogeneity}")
    n_fast = round(heterogeneity * n_hosts)
    fast = list(range(n_fast))
    slow = list(range(n_fast, n_hosts))
    return fast, slow


def residence_means(
    n_hosts: int,
    t_switch: float,
    heterogeneity: float = 0.0,
    fast_factor: float = 10.0,
) -> list[float]:
    """Per-host mean residence time.

    ``H = 0`` -> every host gets ``t_switch``.  ``H = 0.3`` with the
    paper's factor 10 -> 30% of hosts get ``t_switch / 10``.
    """
    if t_switch <= 0:
        raise ValueError(f"t_switch must be positive, got {t_switch}")
    if fast_factor < 1:
        raise ValueError(f"fast_factor must be >= 1, got {fast_factor}")
    fast, _slow = split_fast_slow(n_hosts, heterogeneity)
    fast_set = set(fast)
    return [
        t_switch / fast_factor if h in fast_set else t_switch
        for h in range(n_hosts)
    ]
