"""Mobility decision and cell-choice models."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from repro.des.rng import RandomStreams


class MoveKind(enum.Enum):
    """What the host will do at the end of its cell residence."""

    SWITCH = "switch"
    DISCONNECT = "disconnect"


@dataclass(slots=True, frozen=True)
class MobilityDecision:
    """Pre-decision drawn when a host enters a cell (paper Section 5.1)."""

    kind: MoveKind
    #: Residence time in the current cell before the move.
    residence: float
    #: For DISCONNECT: how long the host stays away.
    away_time: float = 0.0


class PaperMobilityModel:
    """The paper's switch-or-disconnect mobility.

    Parameters
    ----------
    residence_means:
        Per-host mean residence time (see
        :func:`repro.mobility.heterogeneity.residence_means`).
    p_switch:
        Probability that the next move is a cell switch (1.0 = the host
        never disconnects).
    disconnect_mean:
        Mean of the exponential disconnection duration (paper: 1000).
    disconnect_residence_divisor:
        The residence before a disconnection is Exp(mean/this); the
        paper uses ``T_switch / 3``.
    """

    def __init__(
        self,
        residence_means: Sequence[float],
        p_switch: float,
        disconnect_mean: float = 1000.0,
        disconnect_residence_divisor: float = 3.0,
    ):
        if not 0.0 <= p_switch <= 1.0:
            raise ValueError(f"p_switch must be in [0, 1], got {p_switch}")
        if disconnect_mean <= 0:
            raise ValueError("disconnect_mean must be positive")
        if disconnect_residence_divisor <= 0:
            raise ValueError("disconnect_residence_divisor must be positive")
        if any(m <= 0 for m in residence_means):
            raise ValueError("all residence means must be positive")
        self.residence_means = list(residence_means)
        self.p_switch = p_switch
        self.disconnect_mean = disconnect_mean
        self.divisor = disconnect_residence_divisor

    def decide(self, host: int, rng: RandomStreams) -> MobilityDecision:
        """Draw the next move for *host* on entering a cell."""
        mean = self.residence_means[host]
        if rng.bernoulli(f"mobility/decide/{host}", self.p_switch):
            return MobilityDecision(
                kind=MoveKind.SWITCH,
                residence=rng.exponential(f"mobility/residence/{host}", mean),
            )
        return MobilityDecision(
            kind=MoveKind.DISCONNECT,
            residence=rng.exponential(
                f"mobility/residence/{host}", mean / self.divisor
            ),
            away_time=rng.exponential(
                f"mobility/away/{host}", self.disconnect_mean
            ),
        )


# ---------------------------------------------------------------------------
# cell choice
# ---------------------------------------------------------------------------


class CellChooser:
    """Strategy interface: pick the next cell on a switch."""

    def next_cell(self, host: int, current: int, rng: RandomStreams) -> int:
        raise NotImplementedError


class UniformCellChooser(CellChooser):
    """Uniform over the other cells (the paper's implicit default)."""

    def __init__(self, n_mss: int):
        if n_mss < 2:
            raise ValueError("uniform switching needs at least 2 cells")
        self.n_mss = n_mss

    def next_cell(self, host: int, current: int, rng: RandomStreams) -> int:
        return rng.choice_other(f"mobility/cell/{host}", self.n_mss, current)


class GraphWalkCellChooser(CellChooser):
    """Random walk on a cell-adjacency graph (geographic mobility).

    Models cells with a physical neighbourhood structure: a host can
    only roam into an adjacent cell.  The default topology is a cycle
    (cells along a road); pass any connected :class:`networkx.Graph`
    whose nodes are ``0..n_mss-1``.
    """

    def __init__(self, n_mss: int, graph: Optional[nx.Graph] = None):
        if graph is None:
            graph = nx.cycle_graph(n_mss)
        if set(graph.nodes) != set(range(n_mss)):
            raise ValueError("graph nodes must be exactly 0..n_mss-1")
        if not nx.is_connected(graph):
            raise ValueError("cell-adjacency graph must be connected")
        if any(graph.degree(n) == 0 for n in graph.nodes):
            raise ValueError("every cell needs at least one neighbour")
        self.graph = graph
        self._neighbours = {n: sorted(graph.neighbors(n)) for n in graph.nodes}

    def next_cell(self, host: int, current: int, rng: RandomStreams) -> int:
        options = self._neighbours[current]
        k = int(rng.stream(f"mobility/cell/{host}").integers(0, len(options)))
        return options[k]


class MarkovCellChooser(CellChooser):
    """First-order Markov mobility with an explicit transition matrix.

    ``matrix[i][j]`` is the probability of moving to cell *j* when
    switching out of cell *i*; the diagonal must be zero (a switch
    always changes cells).
    """

    def __init__(self, matrix: Sequence[Sequence[float]]):
        P = np.asarray(matrix, dtype=float)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError("transition matrix must be square")
        if np.any(np.diagonal(P) != 0.0):
            raise ValueError("diagonal must be zero: a switch changes cells")
        if np.any(P < 0) or not np.allclose(P.sum(axis=1), 1.0):
            raise ValueError("rows must be probability distributions")
        self.P = P

    def next_cell(self, host: int, current: int, rng: RandomStreams) -> int:
        row = self.P[current]
        u = rng.uniform(f"mobility/cell/{host}")
        return int(np.searchsorted(np.cumsum(row), u, side="right"))


def make_cell_chooser(
    name: str, n_mss: int, graph: Optional[nx.Graph] = None
) -> CellChooser:
    """Factory for the choosers by config name."""
    if name == "uniform":
        return UniformCellChooser(n_mss)
    if name == "graph":
        return GraphWalkCellChooser(n_mss, graph)
    raise ValueError(f"unknown cell chooser {name!r} (use 'uniform' or 'graph')")
