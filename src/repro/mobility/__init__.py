"""Mobility models.

The paper's model (Section 5.1): upon entering a cell an MH pre-decides
its next move -- with probability ``P_switch`` it will *switch* to
another cell after an exponentially distributed residence time with mean
``T_switch``; otherwise it *disconnects* after Exp(``T_switch``/3) and
stays away for Exp(1000).  Heterogeneity ``H`` gives a fraction of the
hosts a 10x shorter mean residence time.

Cell choice is pluggable (:class:`~repro.mobility.models.CellChooser`):
uniform over the other cells (default, matching the paper's uniform
assumptions), a random walk on a cell-adjacency graph, or a Markov
chain -- the "several models ... for the hosts mobility" of the
abstract.
"""

from repro.mobility.heterogeneity import residence_means, split_fast_slow
from repro.mobility.models import (
    CellChooser,
    GraphWalkCellChooser,
    MarkovCellChooser,
    MobilityDecision,
    MoveKind,
    PaperMobilityModel,
    UniformCellChooser,
)

__all__ = [
    "CellChooser",
    "GraphWalkCellChooser",
    "MarkovCellChooser",
    "MobilityDecision",
    "MoveKind",
    "PaperMobilityModel",
    "UniformCellChooser",
    "residence_means",
    "split_fast_slow",
]
