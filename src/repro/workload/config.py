"""Workload configuration: every knob of the paper's Section 5.1 model."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

#: Run length used by the paper's figures (the OCR dropped the literal;
#: see DESIGN.md for the inference).
SIM_TIME_PAPER = 100_000.0


@dataclass(slots=True)
class WorkloadConfig:
    """Parameters of one simulated mobile computation.

    Defaults reproduce the paper's environment: 5 MSSs, 10 MHs,
    Exp(1.0) internal events, ``P_s = 0.4``, 0.01 legs, Exp(1000)
    disconnections, residence pre-decision with ``P_switch``.
    """

    # -- system dimensions -------------------------------------------------
    n_hosts: int = 10
    n_mss: int = 5
    # -- application model --------------------------------------------------
    #: Mean of the exponential internal-event execution time.
    internal_mean: float = 1.0
    #: Probability a communication step is a send (else a receive).
    p_send: float = 0.4
    #: If True a receive operation with an empty inbox blocks until a
    #: message arrives; the paper runs use the non-blocking reading
    #: (see DESIGN.md "Model decisions").
    block_on_empty_receive: bool = False
    #: Destination sampling: True (default) draws among currently
    #: *connected* other hosts (the paper's "while being active" model
    #: reading -- reproduces the paper's Figure 4 shape); False draws
    #: among all other hosts, buffering traffic for disconnected ones at
    #: their MSS (an ablation; the reconnect-time buffered-message flood
    #: erodes QBC's advantage -- see DESIGN.md).
    send_to_connected_only: bool = True
    # -- mobility ------------------------------------------------------------
    #: Mean cell-residence time of the *slow* hosts (the x-axis of all
    #: paper figures).
    t_switch: float = 1000.0
    #: Probability the next move is a switch (1.0 = never disconnect).
    p_switch: float = 1.0
    #: Fraction of fast hosts (mean residence t_switch / fast_factor).
    heterogeneity: float = 0.0
    fast_factor: float = 10.0
    #: Mean disconnection duration.
    disconnect_mean: float = 1000.0
    #: Residence before a disconnection is Exp(t_switch / this).
    disconnect_residence_divisor: float = 3.0
    #: Cell-choice model: "uniform" (paper) or "graph" (extension).
    cell_chooser: str = "uniform"
    # -- network -------------------------------------------------------------
    leg_latency: float = 0.01
    duplicate_prob: float = 0.0
    #: Pessimistic message logging at the source MSS (in-transit
    #: messages become replayable after a rollback).
    log_messages_at_mss: bool = False
    # -- incremental checkpointing (paper Section 2.2) -----------------------
    #: Model host state as dirty pages and ship only deltas (online
    #: mode); sizes land in the MSS storage records.
    incremental_checkpointing: bool = False
    #: Pages of volatile state per host and bytes per page.
    state_pages: int = 64
    page_bytes: int = 4096
    #: Pages dirtied by each application operation.
    dirty_pages_per_op: int = 2
    #: Wireless bandwidth in bytes per time unit; ``inf`` keeps
    #: checkpoint transfers instantaneous (the paper's default).  With a
    #: finite value, each checkpoint pauses the host for
    #: shipped_bytes / bandwidth (composes with ``ckpt_latency``).
    wireless_bandwidth: float = float("inf")
    # -- workload model (registry) -------------------------------------------
    #: Registered workload model shaping arrivals, destination choice
    #: and mobility modulation (see :mod:`repro.workload.registry`);
    #: ``"paper"`` is the uniform-destination Section 5.1 model.
    workload: str = "paper"
    #: Model parameters, coerced against the model's declared
    #: :class:`~repro.workload.registry.Param` specs (``repro
    #: workloads`` lists them).
    workload_params: dict[str, Any] = field(default_factory=dict)
    # -- run ------------------------------------------------------------------
    sim_time: float = SIM_TIME_PAPER
    seed: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def validate(self) -> "WorkloadConfig":
        """Check every parameter; returns self (chainable)."""
        if self.n_hosts < 2:
            raise ValueError("need at least 2 hosts")
        if self.n_mss < 2 and self.cell_chooser == "uniform":
            raise ValueError("uniform cell switching needs at least 2 MSSs")
        if self.internal_mean <= 0:
            raise ValueError("internal_mean must be positive")
        if not 0.0 <= self.p_send <= 1.0:
            raise ValueError("p_send must be in [0, 1]")
        if self.t_switch <= 0:
            raise ValueError("t_switch must be positive")
        if not 0.0 <= self.p_switch <= 1.0:
            raise ValueError("p_switch must be in [0, 1]")
        if not 0.0 <= self.heterogeneity <= 1.0:
            raise ValueError("heterogeneity must be in [0, 1]")
        if self.sim_time <= 0:
            raise ValueError("sim_time must be positive")
        if self.state_pages < 1 or self.page_bytes < 1:
            raise ValueError("state_pages and page_bytes must be positive")
        if self.dirty_pages_per_op < 0:
            raise ValueError("dirty_pages_per_op must be >= 0")
        if self.wireless_bandwidth <= 0:
            raise ValueError("wireless_bandwidth must be positive")
        if self.workload != "paper" or self.workload_params:
            # Lazy import keeps the default path registry-free; raises
            # UnknownWorkloadError / WorkloadParamError (ValueErrors)
            # with did-you-mean suggestions on bad names/params.
            from repro.workload.registry import check_workload

            check_workload(self.workload, self.workload_params)
        return self

    def with_(self, **changes) -> "WorkloadConfig":
        """Functional update (does not mutate self)."""
        return replace(self, **changes)

    def meta(self) -> dict[str, Any]:
        """Metadata dict recorded into generated traces.

        Carries *every* config field, so a stored trace names its
        generating config exactly: ``WorkloadConfig(**trace.meta)``
        round-trips the trace cache key
        (:func:`repro.workload.cache.config_key`) and no two configs
        with different keys can share a meta dict.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = dict(value)
            out[f.name] = value
        return out
