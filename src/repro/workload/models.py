"""Builtin workload models.

Each entry shapes one axis the paper's uniform model fixes:

========== ==========================================================
``paper``    Section 5.1 exactly (the registry default).
``zipf``     Zipf-skewed destination popularity.
``hotspot``  A hot set of receiver hosts absorbing most traffic.
``bursty``   MMPP-style on/off arrival phases per host.
``trace``    Inter-operation delays replayed from a JSONL schedule.
``daynight`` Periodic day/night modulation of cell-residence times.
========== ==========================================================

Every model draws only from namespaced RNG streams
(``workload/...``, plus the driver's existing ``app/...`` streams), so
two models given the same seed perturb each other's draws only through
the decisions themselves -- and ``paper`` makes exactly the draws the
pre-registry driver made, keeping its traces bit-identical.
"""

from __future__ import annotations

import json
import os
from collections import deque

from repro.workload.registry import (
    Param,
    WorkloadModel,
    WorkloadParamError,
    cast_bool,
    register_workload,
)


@register_workload("paper")
class PaperWorkload(WorkloadModel):
    """The paper's Section 5.1 model: Exp(``internal_mean``) arrivals,
    uniform destinations, unmodulated mobility.

    The base-class hooks *are* this model; the subclass exists so the
    registry's default entry has a name and a docstring.
    """


@register_workload("zipf")
class ZipfWorkload(WorkloadModel):
    """Zipf-skewed destination popularity: host ``d`` is drawn with
    weight ``(d + 1) ** -alpha``, so low host ids are hot receivers.

    ``alpha = 0`` degenerates to uniform; the paper's figures probe
    uniform only, while survey work (PAPERS.md) notes protocol overhead
    rankings flip under skew -- checkpoint pressure concentrates on the
    hot receivers' Z-paths.
    """

    PARAMS = {
        "alpha": Param(1.0, float, "Zipf exponent (0 = uniform)"),
    }

    def _setup(self) -> None:
        alpha = self.params["alpha"]
        if alpha < 0:
            raise WorkloadParamError(
                f"workload 'zipf' parameter 'alpha' must be >= 0, "
                f"got {alpha}"
            )
        self._weight = [
            (d + 1) ** -alpha for d in range(self.config.n_hosts)
        ]

    def choose_destination(self, host, candidates, rng, now):
        weight = self._weight
        total = 0.0
        for d in candidates:
            total += weight[d]
        u = rng.uniform(f"workload/zipf/{host}") * total
        acc = 0.0
        for d in candidates:
            acc += weight[d]
            if u < acc:
                return d
        return candidates[len(candidates) - 1]


@register_workload("hotspot")
class HotspotWorkload(WorkloadModel):
    """Hot-set destination skew: with probability ``bias`` a send
    targets the hot set (host ids ``0 .. n_hot-1``), uniformly;
    otherwise it falls back to a uniform draw over every candidate.

    When no hot host is reachable (all disconnected) the send falls
    back to the uniform draw without consuming the bias coin.
    """

    PARAMS = {
        "n_hot": Param(1, int, "size of the hot set (host ids 0..n_hot-1)"),
        "bias": Param(0.8, float, "probability a send targets the hot set"),
    }

    def _setup(self) -> None:
        if self.params["n_hot"] < 1:
            raise WorkloadParamError(
                f"workload 'hotspot' parameter 'n_hot' must be >= 1, "
                f"got {self.params['n_hot']}"
            )
        if not 0.0 <= self.params["bias"] <= 1.0:
            raise WorkloadParamError(
                f"workload 'hotspot' parameter 'bias' must be in [0, 1], "
                f"got {self.params['bias']}"
            )

    def choose_destination(self, host, candidates, rng, now):
        n_hot = self.params["n_hot"]
        hot = [d for d in candidates if d < n_hot]
        pool = (
            hot
            if hot
            and rng.bernoulli(f"workload/hot/{host}", self.params["bias"])
            else candidates
        )
        return pool[rng.choice_index(f"app/dst/{host}", len(pool))]


@register_workload("bursty")
class BurstyWorkload(WorkloadModel):
    """MMPP-style on/off arrivals: each host alternates exponential ON
    phases (operations ``burst_factor`` times faster than
    ``internal_mean``) and OFF phases (``burst_factor`` times slower).

    Phase boundaries are drawn lazily per host from the
    ``workload/burst/{host}`` stream as simulation time crosses them,
    so the phase machine is deterministic for a given seed and adds no
    draws to other hosts' streams.
    """

    PARAMS = {
        "on_mean": Param(500.0, float, "mean ON-phase duration"),
        "off_mean": Param(500.0, float, "mean OFF-phase duration"),
        "burst_factor": Param(
            5.0, float, "arrival speed-up in ON phases (slow-down in OFF)"
        ),
    }

    def _setup(self) -> None:
        for key in ("on_mean", "off_mean"):
            if self.params[key] <= 0:
                raise WorkloadParamError(
                    f"workload 'bursty' parameter {key!r} must be "
                    f"positive, got {self.params[key]}"
                )
        if self.params["burst_factor"] < 1.0:
            raise WorkloadParamError(
                f"workload 'bursty' parameter 'burst_factor' must be "
                f">= 1, got {self.params['burst_factor']}"
            )
        self._on: dict[int, bool] = {}
        self._end: dict[int, float] = {}

    def _phase(self, host, rng, now) -> bool:
        on = self._on.get(host, True)
        end = self._end.get(host)
        if end is None:
            end = rng.exponential(
                f"workload/burst/{host}", self.params["on_mean"]
            )
        while now >= end:
            on = not on
            end += rng.exponential(
                f"workload/burst/{host}",
                self.params["on_mean"] if on else self.params["off_mean"],
            )
        self._on[host] = on
        self._end[host] = end
        return on

    def arrival_delay(self, host, rng, now):
        factor = self.params["burst_factor"]
        mean = (
            self.config.internal_mean / factor
            if self._phase(host, rng, now)
            else self.config.internal_mean * factor
        )
        return rng.exponential(f"app/internal/{host}", mean)


@register_workload("trace")
class TraceWorkload(WorkloadModel):
    """Trace-driven arrivals: inter-operation delays replayed from a
    JSONL schedule, one ``{"host": h, "delay": d}`` object per line.

    The schedule is read lazily (never materialized), with per-host
    queues buffering records read ahead for other hosts -- interleave
    hosts in the file to keep that buffering small.  At end of file the
    schedule restarts when ``wrap`` is true; a host with no records at
    all (or everyone, once an unwrapped schedule is exhausted) falls
    back to the paper's Exp(``internal_mean``) arrivals.
    """

    PARAMS = {
        "path": Param(None, str, "JSONL schedule file", required=True),
        "wrap": Param(
            True, cast_bool, "restart the schedule at end of file"
        ),
    }

    def _setup(self) -> None:
        path = self.params["path"]
        if not os.path.isfile(path):
            raise WorkloadParamError(
                f"workload 'trace': schedule file not found: {path}"
            )
        self._fh = open(path, encoding="utf-8")
        self._lineno = 0
        self._queues: dict[int, deque] = {}
        self._absent: set[int] = set()

    def _read_record(self):
        """Next (host, delay) record, ``()`` for a blank line, ``None``
        at end of file."""
        line = self._fh.readline()
        if not line:
            return None
        self._lineno += 1
        line = line.strip()
        if not line:
            return ()
        try:
            record = json.loads(line)
            host = int(record["host"])
            delay = float(record["delay"])
        except (KeyError, TypeError, ValueError) as exc:
            raise WorkloadParamError(
                f"workload 'trace': bad schedule line {self._lineno} "
                f"of {self.params['path']}: {exc}"
            ) from None
        if delay < 0:
            raise WorkloadParamError(
                f"workload 'trace': negative delay on line "
                f"{self._lineno} of {self.params['path']}"
            )
        return host, delay

    def arrival_delay(self, host, rng, now):
        if host not in self._absent:
            queue = self._queues.get(host)
            if queue is None:
                queue = self._queues[host] = deque()
            wrapped = False
            while not queue:
                record = self._read_record()
                if record is None:
                    if not self.params["wrap"] or wrapped:
                        self._absent.add(host)
                        break
                    self._fh.seek(0)
                    self._lineno = 0
                    wrapped = True
                    continue
                if not record:
                    continue  # blank line
                h, delay = record
                other = self._queues.get(h)
                if other is None:
                    other = self._queues[h] = deque()
                other.append(delay)
            if queue:
                return queue.popleft()
        return rng.exponential(
            f"app/internal/{host}", self.config.internal_mean
        )


@register_workload("daynight")
class DayNightWorkload(WorkloadModel):
    """Day/night mobility modulation: during the night fraction of each
    period, cell-residence times stretch by ``night_factor`` (hosts
    move less); the application model is untouched.

    The scale is a deterministic function of simulation time, so it
    consumes no RNG draws and composes with heterogeneity (fast hosts
    stay proportionally fast at night).
    """

    PARAMS = {
        "period": Param(4000.0, float, "length of one day/night cycle"),
        "day_fraction": Param(
            0.5, float, "fraction of the period that is day (unscaled)"
        ),
        "night_factor": Param(
            4.0, float, "residence-time multiplier at night"
        ),
    }

    def _setup(self) -> None:
        if self.params["period"] <= 0:
            raise WorkloadParamError(
                f"workload 'daynight' parameter 'period' must be "
                f"positive, got {self.params['period']}"
            )
        if not 0.0 <= self.params["day_fraction"] <= 1.0:
            raise WorkloadParamError(
                f"workload 'daynight' parameter 'day_fraction' must be "
                f"in [0, 1], got {self.params['day_fraction']}"
            )
        if self.params["night_factor"] <= 0:
            raise WorkloadParamError(
                f"workload 'daynight' parameter 'night_factor' must be "
                f"positive, got {self.params['night_factor']}"
            )

    def residence_scale(self, host, now):
        period = self.params["period"]
        phase = (now % period) / period
        if phase < self.params["day_fraction"]:
            return 1.0
        return self.params["night_factor"]
