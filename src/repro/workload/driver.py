"""Workload driver: runs the paper's application/mobility model.

Two entry points share one engine:

* :func:`generate_trace` -- run the mobile-system simulation *without*
  any protocol and emit the protocol-independent
  :class:`~repro.core.trace.Trace` used by the replay comparison.
* :func:`run_online` -- run the same workload with a checkpointing
  protocol embedded: piggybacks ride real messages and an optional
  non-zero checkpoint latency pauses the host after every checkpoint
  (the paper's robustness check on instantaneous insertion).

Per-host loops (paper Section 5.1):

* **application**: wait Exp(``internal_mean``) (the internal event),
  then communicate -- send to a uniform random other host with
  probability ``p_send``, otherwise perform a receive operation that
  consumes the oldest inbox message (no-op when empty unless
  ``block_on_empty_receive``).
* **mobility**: on entering a cell pre-decide switch (prob
  ``p_switch``, residence Exp(T_i)) or disconnect (residence
  Exp(T_i/3), away Exp(``disconnect_mean``)); disconnected hosts pause
  their application loop and reconnect into the same cell.

Both loops consult the config's registered *workload model*
(:mod:`repro.workload.registry`) for the shaping decisions -- arrival
delays, destination choice, residence scaling.  The default ``"paper"``
model reproduces the hard-coded behaviour above bit-identically.

A third entry point, :func:`generate_streamed`, runs the same
simulation but hands each event to a
:class:`~repro.core.streamed.StreamingCompiler` instead of growing the
in-memory event list -- compiled SoA blocks come out the other side
with O(block) staging memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.streamed import StreamedTrace

from repro.core.metrics import CheckpointStats, ProtocolRunMetrics
from repro.core.trace import EventType, Trace, TraceEvent
from repro.des.core import Environment
from repro.des.rng import RandomStreams
from repro.mobility.heterogeneity import residence_means
from repro.mobility.models import MoveKind, PaperMobilityModel, make_cell_chooser
from repro.net.system import MobileSystem, NetworkParams
from repro.protocols.base import CheckpointingProtocol
from repro.workload.config import WorkloadConfig


@dataclass(slots=True)
class OnlineResult:
    """Outcome of an online (protocol-in-the-loop) run."""

    trace: Trace
    protocol: CheckpointingProtocol
    metrics: ProtocolRunMetrics
    system: MobileSystem
    #: Stable-storage bytes reclaimed by online GC (0 when disabled).
    gc_bytes_reclaimed: int = 0
    #: Bytes shipped over the wireless links for checkpoints (full
    #: snapshots, or dirty-page deltas under incremental checkpointing).
    bytes_shipped: int = 0


class _AllOthers:
    """Lazy ascending sequence of every host id except one.

    The destination-candidate set for ``send_to_connected_only=False``:
    ``_AllOthers(n, skip)[k]`` is ``k`` shifted past ``skip``, exactly
    the mapping :meth:`RandomStreams.choice_other` applies -- so the
    paper model's uniform draw over it stays bit-identical to the old
    direct ``choice_other`` call while costing O(1) memory per host
    (a materialized list would be O(n) per sender).
    """

    __slots__ = ("n", "skip")

    def __init__(self, n: int, skip: int):
        self.n = n
        self.skip = skip

    def __len__(self) -> int:
        return self.n - 1

    def __getitem__(self, index: int) -> int:
        if index < 0:
            index += self.n - 1
        if not 0 <= index < self.n - 1:
            raise IndexError(index)
        return index if index < self.skip else index + 1

    def __iter__(self):
        for index in range(self.n - 1):
            yield index if index < self.skip else index + 1


class _Driver:
    """One simulated run; see module docstring for the model."""

    def __init__(
        self,
        config: WorkloadConfig,
        protocol: Optional[CheckpointingProtocol] = None,
        ckpt_latency: float = 0.0,
        gc_interval: Optional[float] = None,
        event_sink: Optional[Callable[[TraceEvent], None]] = None,
    ):
        config.validate()
        if ckpt_latency < 0:
            raise ValueError("ckpt_latency must be >= 0")
        if gc_interval is not None and gc_interval <= 0:
            raise ValueError("gc_interval must be positive")
        if protocol is not None and protocol.n_hosts != config.n_hosts:
            raise ValueError(
                f"protocol sized for {protocol.n_hosts} hosts, "
                f"config has {config.n_hosts}"
            )
        self.config = config
        self.protocol = protocol
        self.ckpt_latency = ckpt_latency
        self.env = Environment()
        self.rng = RandomStreams(config.seed)
        self.system = MobileSystem(
            self.env,
            NetworkParams(
                n_hosts=config.n_hosts,
                n_mss=config.n_mss,
                leg_latency=config.leg_latency,
                duplicate_prob=config.duplicate_prob,
                log_messages=config.log_messages_at_mss,
            ),
            self.rng,
        )
        self.mobility = PaperMobilityModel(
            residence_means(
                config.n_hosts,
                config.t_switch,
                config.heterogeneity,
                config.fast_factor,
            ),
            p_switch=config.p_switch,
            disconnect_mean=config.disconnect_mean,
            disconnect_residence_divisor=config.disconnect_residence_divisor,
        )
        self.chooser = make_cell_chooser(config.cell_chooser, config.n_mss)
        # Imported lazily: the registry must stay importable without
        # the driver (and vice versa).
        from repro.workload.registry import make_workload

        self.model = make_workload(config)
        self._others_cache: dict[int, _AllOthers] = {}
        self.events: list[TraceEvent] = []
        #: Where emitted events go: the in-memory list by default, a
        #: caller-supplied sink (e.g. a StreamingCompiler) otherwise.
        self._emit = (
            self.events.append if event_sink is None else event_sink
        )
        self._app_paused = [False] * config.n_hosts
        self.n_sends = 0
        self.n_receives = 0
        self.gc_interval = gc_interval
        self.gc_bytes_reclaimed = 0
        #: Checkpoint-transfer pause owed per host (latency + bytes/bw).
        self._pending_pause = [0.0] * config.n_hosts
        #: Incremental-checkpointing machinery (paper Section 2.2).
        self._checkpointers = None
        self._cut_ordinal = [0] * config.n_hosts
        self._last_stored_index: list[Optional[int]] = [None] * config.n_hosts
        self.bytes_shipped = 0
        if protocol is not None:
            if config.incremental_checkpointing:
                from repro.storage.incremental import (
                    HostStateModel,
                    IncrementalCheckpointer,
                )

                self._checkpointers = [
                    IncrementalCheckpointer(
                        HostStateModel(
                            h, n_pages=config.state_pages,
                            page_bytes=config.page_bytes,
                        )
                    )
                    for h in range(config.n_hosts)
                ]
            # Checkpoints persist at the current MSS's stable storage
            # (paper Section 2.2, point (a)); QBC replacements overwrite
            # the record at the same (host, index).
            protocol.storage_hook = self._on_checkpoint
            # The initial checkpoints were taken in the protocol's
            # constructor, before the hook existed: persist them now.
            for ck in protocol.checkpoints:
                self._on_checkpoint(ck.host, ck.index, ck.reason, ck.metadata or {})

    # ------------------------------------------------------------------
    # checkpoint persistence + transfer-cost accounting (online mode)
    # ------------------------------------------------------------------
    def _on_checkpoint(self, host, index, reason, metadata) -> None:
        """Every protocol checkpoint lands here: persist it at the
        current MSS and charge the host the wireless transfer cost."""
        if reason == "rename":
            # metadata-only relabel: store a fresh record at the new
            # index, ship nothing, no pause
            self.system.store_checkpoint(
                host, index, reason, metadata=dict(metadata), size_bytes=0
            )
            self._last_stored_index[host] = index
            return
        incremental = False
        base_index = None
        if self._checkpointers is not None:
            ck = self._checkpointers[host]
            shipped = ck.cut(self._cut_ordinal[host])
            self._cut_ordinal[host] += 1
            if isinstance(shipped, dict):  # full snapshot (first cut)
                size_bytes = len(shipped) * self.config.page_bytes
            else:
                size_bytes = shipped.size_pages * self.config.page_bytes
                incremental = True
                base_index = self._last_stored_index[host]
        else:
            # full checkpointing ships the host's whole modelled state
            size_bytes = self.config.state_pages * self.config.page_bytes
        self.bytes_shipped += size_bytes
        self.system.store_checkpoint(
            host,
            index,
            reason,
            metadata=dict(metadata),
            size_bytes=size_bytes,
            incremental=incremental,
            base_index=base_index,
        )
        self._last_stored_index[host] = index
        pause = self.ckpt_latency
        if self.config.wireless_bandwidth != float("inf"):
            pause += size_bytes / self.config.wireless_bandwidth
        self._pending_pause[host] += pause

    def _ckpt_pause(self, host: int) -> float:
        """Consume the transfer pause owed by *host*."""
        pause = self._pending_pause[host]
        self._pending_pause[host] = 0.0
        return pause

    # ------------------------------------------------------------------
    # application loop
    # ------------------------------------------------------------------
    def _schedule_app(self, host: int, extra: float = 0.0) -> None:
        delay = (
            self.model.arrival_delay(host, self.rng, self.env.now) + extra
        )
        self.env.call_later(delay, lambda: self._app_step(host))

    def _app_step(self, host: int) -> None:
        h = self.system.hosts[host]
        if not h.is_connected:
            self._app_paused[host] = True
            return
        if self._checkpointers is not None and self.config.dirty_pages_per_op:
            # the internal event mutates part of the host's state
            self._checkpointers[host].state.touch_random(
                self.rng.stream(f"app/pages/{host}"),
                self.config.dirty_pages_per_op,
            )
        if self.rng.bernoulli(f"app/op/{host}", self.config.p_send):
            self._do_send(host)
            self._schedule_app(host, extra=self._ckpt_pause(host))
        else:
            msg = h.try_receive()
            if msg is not None:
                self._consume(host, msg)
                self._schedule_app(host, extra=self._ckpt_pause(host))
            elif self.config.block_on_empty_receive:
                ev = h.receive_event()
                ev.add_callback(lambda e: self._blocked_receive_done(host, e))
            else:
                # Empty inbox: the receive operation is a no-op.
                self._schedule_app(host)

    def _blocked_receive_done(self, host: int, event) -> None:
        self._consume(host, event.value)
        self._schedule_app(host, extra=self._ckpt_pause(host))

    def _do_send(self, host: int) -> None:
        if self.config.send_to_connected_only:
            others = [
                h for h in self.system.connected_hosts() if h != host
            ]
            if not others:
                return  # nobody reachable: the send operation is a no-op
        else:
            others = self._others_cache.get(host)
            if others is None:
                others = self._others_cache[host] = _AllOthers(
                    self.config.n_hosts, host
                )
        dst = self.model.choose_destination(
            host, others, self.rng, self.env.now
        )
        if dst is None:
            return  # the model dropped the send: a no-op
        piggyback = {}
        pg_ints = 0
        if self.protocol is not None:
            piggyback = {"pg": self.protocol.on_send(host, dst, self.env.now)}
            pg_ints = self.protocol.piggyback_ints
        msg = self.system.send_application(
            host, dst, piggyback=piggyback, piggyback_ints=pg_ints
        )
        self.n_sends += 1
        self._emit(
            TraceEvent(
                time=self.env.now,
                etype=EventType.SEND,
                host=host,
                msg_id=msg.msg_id,
                peer=dst,
            )
        )

    def _consume(self, host: int, msg) -> None:
        if self.protocol is not None:
            self.protocol.on_receive(host, msg.piggyback["pg"], msg.src, self.env.now)
        self.n_receives += 1
        self._emit(
            TraceEvent(
                time=self.env.now,
                etype=EventType.RECEIVE,
                host=host,
                msg_id=msg.msg_id,
                peer=msg.src,
            )
        )

    # ------------------------------------------------------------------
    # mobility loop
    # ------------------------------------------------------------------
    def _enter_cell(self, host: int) -> None:
        decision = self.mobility.decide(host, self.rng)
        # The workload model may stretch/shrink residence (day/night
        # modulation); the paper model's 1.0 leaves it bit-identical.
        residence = decision.residence * self.model.residence_scale(
            host, self.env.now
        )
        if decision.kind is MoveKind.SWITCH:
            self.env.call_later(residence, lambda: self._do_switch(host))
        else:
            self.env.call_later(
                residence,
                lambda: self._do_disconnect(host, decision.away_time),
            )

    def _do_switch(self, host: int) -> None:
        old = self.system.hosts[host].mss_id
        new = self.chooser.next_cell(host, old, self.rng)
        self._emit(
            TraceEvent(
                time=self.env.now,
                etype=EventType.CELL_SWITCH,
                host=host,
                peer=old,
                cell=new,
            )
        )
        if self.protocol is not None:
            self.protocol.on_cell_switch(host, self.env.now, new)
        self.system.switch_cell(host, new)
        self._enter_cell(host)

    def _do_disconnect(self, host: int, away_time: float) -> None:
        self._emit(
            TraceEvent(time=self.env.now, etype=EventType.DISCONNECT, host=host)
        )
        if self.protocol is not None:
            self.protocol.on_disconnect(host, self.env.now)
        self.system.disconnect(host)
        self.env.call_later(away_time, lambda: self._do_reconnect(host))

    def _do_reconnect(self, host: int) -> None:
        self.system.reconnect(host)
        cell = self.system.hosts[host].mss_id
        self._emit(
            TraceEvent(
                time=self.env.now, etype=EventType.RECONNECT, host=host, cell=cell
            )
        )
        if self.protocol is not None:
            self.protocol.on_reconnect(host, self.env.now, cell)
        if self._app_paused[host]:
            self._app_paused[host] = False
            self._schedule_app(host)
        self._enter_cell(host)

    # ------------------------------------------------------------------
    # storage garbage collection (index-based protocols only)
    # ------------------------------------------------------------------
    def _gc_tick(self) -> None:
        from repro.storage.gc import collect_garbage

        cutoff = min(self.protocol.sn)
        self.gc_bytes_reclaimed += collect_garbage(
            [s.storage for s in self.system.stations], cutoff
        )
        self.env.call_later(self.gc_interval, self._gc_tick)

    # ------------------------------------------------------------------
    def _run_sim(self) -> None:
        """Schedule the per-host loops and run the DES to the horizon."""
        for host in range(self.config.n_hosts):
            self._schedule_app(host)
            self._enter_cell(host)
        if self.gc_interval is not None:
            if self.protocol is None or not hasattr(self.protocol, "sn"):
                raise ValueError(
                    "gc_interval needs an index-based protocol (with .sn): "
                    "the recovery-line cutoff comes from min(sn)"
                )
            self.env.call_later(self.gc_interval, self._gc_tick)
        self.env.run(until=self.config.sim_time)

    def run(self) -> Trace:
        self._run_sim()
        return Trace(
            n_hosts=self.config.n_hosts,
            n_mss=self.config.n_mss,
            events=self.events,
            sim_time=self.config.sim_time,
            meta=self.config.meta(),
        )


def generate_trace(config: WorkloadConfig) -> Trace:
    """Simulate the mobile system and return its event trace.

    The trace is protocol-independent (the paper's instantaneous-
    checkpoint assumption) and fully determined by ``config`` including
    its ``seed``.
    """
    return _Driver(config).run()


def generate_streamed(
    config: WorkloadConfig,
    block_events: Optional[int] = None,
) -> "StreamedTrace":
    """Simulate the mobile system, compiling SoA blocks on the fly.

    Equivalent to ``compile_trace(generate_trace(config))`` -- the
    returned :class:`~repro.core.streamed.StreamedTrace` reconstructs a
    bit-identical :class:`~repro.core.compiled.CompiledTrace` -- but
    the event list is never materialized: each
    :class:`~repro.core.trace.TraceEvent` goes straight into a
    :class:`~repro.core.streamed.StreamingCompiler` and is dropped, so
    peak staging memory is O(*block_events*) python objects plus the
    compact numpy output blocks.
    """
    from repro.core.streamed import StreamingCompiler

    kwargs = {} if block_events is None else {"block_events": block_events}
    compiler = StreamingCompiler(
        n_hosts=config.n_hosts,
        n_mss=config.n_mss,
        sim_time=config.sim_time,
        **kwargs,
    )
    driver = _Driver(config, event_sink=compiler.feed_event)
    driver._run_sim()
    return compiler.finish()


def run_online(
    config: WorkloadConfig,
    protocol: CheckpointingProtocol,
    ckpt_latency: float = 0.0,
    gc_interval: Optional[float] = None,
) -> OnlineResult:
    """Run the workload with *protocol* embedded in the simulation.

    ``ckpt_latency`` > 0 makes every checkpoint pause the host's
    application loop by that amount before the next operation -- the
    "non negligible" checkpoint-time scenario of Section 5.1.

    Checkpoints persist in the current MSS's stable storage (including
    the cross-MSS base migration after handoffs).  With ``gc_interval``
    set (index-based protocols only), obsolete records below the
    recovery-line cutoff ``min(sn)`` are reclaimed periodically; the
    reclaimed bytes are reported on the returned system's driver.
    """
    driver = _Driver(
        config, protocol=protocol, ckpt_latency=ckpt_latency,
        gc_interval=gc_interval,
    )
    trace = driver.run()
    metrics = ProtocolRunMetrics(
        protocol=protocol.name,
        stats=CheckpointStats.from_protocol(protocol),
        n_sends=driver.n_sends,
        n_receives=driver.n_receives,
        piggyback_ints_total=driver.n_sends * protocol.piggyback_ints,
        sim_time=config.sim_time,
        seed=config.seed,
    )
    return OnlineResult(
        trace=trace,
        protocol=protocol,
        metrics=metrics,
        system=driver.system,
        gc_bytes_reclaimed=driver.gc_bytes_reclaimed,
        bytes_shipped=driver.bytes_shipped,
    )
