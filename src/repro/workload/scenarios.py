"""Named scenarios: the exact parameter sets behind the paper's figures.

All six figures share ``P_s = 0.4`` and sweep ``T_switch`` of the slow
hosts; they differ in ``P_switch`` (1.0 = never disconnect vs 0.8) and
heterogeneity ``H`` (0%, 30%, 50%).
"""

from __future__ import annotations

from repro.workload.config import WorkloadConfig

#: T_switch sweep of the figures' x-axis (log-spaced 100 .. 10000).
T_SWITCH_SWEEP = (100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0)

#: (p_switch, heterogeneity) per figure number.
_FIGURES: dict[int, tuple[float, float]] = {
    1: (1.0, 0.0),
    2: (0.8, 0.0),
    3: (1.0, 0.5),
    4: (0.8, 0.5),
    5: (1.0, 0.3),
    6: (0.8, 0.3),
}


def figure_config(
    figure: int,
    t_switch: float,
    sim_time: float | None = None,
    seed: int = 0,
) -> WorkloadConfig:
    """Workload configuration for one point of one paper figure."""
    try:
        p_switch, heterogeneity = _FIGURES[figure]
    except KeyError:
        raise ValueError(
            f"the paper has figures 1..6, got {figure}"
        ) from None
    cfg = WorkloadConfig(
        p_send=0.4,
        t_switch=t_switch,
        p_switch=p_switch,
        heterogeneity=heterogeneity,
        seed=seed,
    )
    if sim_time is not None:
        cfg = cfg.with_(sim_time=sim_time)
    return cfg.validate()


def paper_scenarios() -> dict[int, dict[str, float]]:
    """Figure number -> its distinguishing parameters (for reports)."""
    return {
        fig: {"p_send": 0.4, "p_switch": ps, "heterogeneity": h}
        for fig, (ps, h) in _FIGURES.items()
    }
