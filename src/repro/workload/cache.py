"""Content-addressed trace cache.

Trace generation dominates sweep cost (a sim_time=4000 run spends ~20x
longer in :func:`~repro.workload.driver.generate_trace` than in the
fused replay of all three paper protocols), and sweeps regenerate the
*same* traces constantly: re-running a figure after a protocol tweak,
evaluating a new protocol on the standard grid, benchmarking.  Because
generation is a pure function of :class:`WorkloadConfig` (the seed is a
config field), each trace can be addressed by the hash of its
generating config and reused.

Key derivation (:func:`config_key`) canonicalizes every dataclass field
-- floats through :func:`repr` so ``inf``/``-0.0`` round-trip, dicts
with sorted keys -- and hashes the JSON with SHA-256.  Any field
change, including ``seed``, yields a new key; re-ordering ``extra``
entries does not.

Two tiers:

* an in-process LRU (:class:`TraceCache`) holding deserialized
  :class:`~repro.core.trace.Trace` objects, bounded by entry count;
* an optional on-disk store (one ``<key>.npz`` per trace via
  :mod:`repro.core.trace_io`) shared between processes and sessions --
  this is what makes the parallel sweep's worker processes and repeated
  CLI invocations hit instead of regenerate.

Disk writes are atomic (tmp file + :func:`os.replace`), so concurrent
sweep workers racing on the same key at worst both generate and one
write wins -- never a torn file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import fields
from pathlib import Path
from typing import Optional, Union

from repro.core.trace import Trace
from repro.workload import driver as _driver
from repro.workload.config import WorkloadConfig

#: Default capacity of the in-memory tier: a full paper figure touches
#: len(T_SWITCH_SWEEP) x len(seeds) = 21 traces per protocol set, but
#: each point's trace is consumed immediately after generation, so a
#: small window is enough to serve repeated replays within a session.
DEFAULT_MAX_ENTRIES = 16

#: Environment variable naming the shared on-disk store directory.
CACHE_DIR_ENV = "REPRO_TRACE_CACHE_DIR"


def _canonical(value):
    """JSON-safe canonical form of one config field value."""
    if isinstance(value, float):
        # repr() round-trips inf/-inf/nan and distinguishes -0.0; JSON
        # would reject the non-finite ones as literals.
        return repr(value)
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _metric_event(event: str) -> None:
    """Count a cache event in the process-local metrics registry.

    Imported lazily so the cache stays importable before
    :mod:`repro.obs.metrics` (and never pulls it in at module import,
    keeping this layer cycle-free)."""
    from repro.obs.metrics import registry

    registry().counter("repro_trace_cache_events_total", event=event).inc()


def config_key(config: WorkloadConfig) -> str:
    """Content address of the trace *config* generates.

    A hex SHA-256 over the canonicalized (field name -> value) mapping.
    Stable across processes and sessions; sensitive to every field
    (``seed`` included), insensitive to ``extra`` dict ordering.

    The registry fields (``workload`` / ``workload_params``) joined the
    config after traces were already cached on disk; at their paper
    defaults they are dropped from the hashed payload, so every
    pre-registry key (and existing cache entry) stays valid while any
    non-default model still gets its own distinct key.
    """
    payload = {
        f.name: _canonical(getattr(config, f.name))
        for f in fields(config)
    }
    if payload.get("workload") == "paper" and not config.workload_params:
        del payload["workload"]
        del payload["workload_params"]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TraceCache:
    """Two-tier (memory LRU + optional disk) trace cache.

    Parameters
    ----------
    max_entries:
        In-memory capacity; least-recently-used traces are evicted
        beyond it.  0 disables the memory tier (useful to exercise the
        disk tier alone).
    disk_dir:
        Directory for the persistent ``<key>.npz`` tier; created on
        first write.  None disables the disk tier.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        disk_dir: Optional[Union[str, Path]] = None,
    ):
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._memory: OrderedDict[str, Trace] = OrderedDict()
        #: Served from the memory tier.
        self.hits = 0
        #: Served from the disk tier (also counted as a miss of memory).
        self.disk_hits = 0
        #: Required a fresh generate_trace call.
        self.misses = 0
        #: Disk entries that failed checksum/decode and were evicted.
        self.corrupt_evictions = 0
        #: Outdated-but-readable disk entries rewritten in place at the
        #: current format: pre-digest files (after a structural
        #: validation) and format-v1 files lacking native array columns.
        self.legacy_upgrades = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._memory)

    def _disk_path(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / f"{key}.npz"

    def _remember(self, key: str, trace: Trace) -> None:
        if self.max_entries == 0:
            return
        self._memory[key] = trace
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    def _store_disk(self, key: str, trace: Trace) -> None:
        path = self._disk_path(key)
        if path is None or path.exists():
            return
        self._write_atomic(key, path, trace)

    def _write_atomic(self, key: str, path: Path, trace: Trace) -> None:
        # Import locally-late so monkeypatched savers are honoured and
        # numpy stays off the import path of cache-less runs.
        from repro.core import trace_io

        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{key[:16]}-", suffix=".tmp.npz"
        )
        os.close(fd)
        try:
            trace_io.save_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def _load_disk(self, key: str) -> Optional[Trace]:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        from repro.core import trace_io

        try:
            # The stored trace was validated at generation time; skip
            # the O(events) structural re-check but verify the column
            # checksum so a truncated/bit-flipped file cannot replay.
            trace = trace_io.load_trace(path, validate=False, verify=True)
        except trace_io.TraceDigestMissing:
            return self._load_legacy(key, path)
        except trace_io.TraceIntegrityError:
            return self._evict_corrupt(path)
        if getattr(trace, "_array_columns_cache", None) is None:
            # A format-v1 entry: readable, but it holds no native array
            # columns, so every hit would re-lower lists.  Rewrite it in
            # place at the current format (same best-effort contract as
            # the pre-digest upgrade) so later hits feed the vectorized
            # engine directly.
            self.legacy_upgrades += 1
            _metric_event("legacy_upgrade")
            try:
                self._write_atomic(key, path, trace)
            except OSError:
                pass
        return trace

    def _load_legacy(self, key: str, path: Path) -> Optional[Trace]:
        """A pre-digest cache entry: accept it after a structural
        validation (the only check those files ever had) and rewrite it
        in place with a checksum so every later load verifies cheaply.
        Evicting it instead would silently regenerate a whole existing
        cache on upgrade."""
        from repro.core import trace_io

        try:
            trace = trace_io.load_trace(path, validate=True, verify=False)
        except (trace_io.TraceIntegrityError, ValueError):
            return self._evict_corrupt(path)
        self.legacy_upgrades += 1
        _metric_event("legacy_upgrade")
        try:
            self._write_atomic(key, path, trace)
        except OSError:
            pass  # the upgrade is best-effort; the trace itself is good
        return trace

    def _evict_corrupt(self, path: Path) -> None:
        # A corrupt entry is a miss: evict it so the regenerated
        # trace can take its slot, never poison the sweep.
        self.corrupt_evictions += 1
        _metric_event("corrupt_eviction")
        try:
            path.unlink()
        except OSError:
            pass
        return None

    # ------------------------------------------------------------------
    def get_or_generate(self, config: WorkloadConfig) -> Trace:
        """Return the trace *config* generates, from cache if possible.

        Lookup order: memory LRU, disk store, fresh
        :func:`~repro.workload.driver.generate_trace` (which then
        populates both tiers).
        """
        key = config_key(config)
        trace = self._memory.get(key)
        if trace is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            _metric_event("hit")
            return trace
        trace = self._load_disk(key)
        if trace is not None:
            self.disk_hits += 1
            _metric_event("disk_hit")
            self._remember(key, trace)
            return trace
        self.misses += 1
        _metric_event("miss")
        # Resolved through the module so tests monkeypatching
        # repro.workload.driver.generate_trace observe cache misses.
        trace = _driver.generate_trace(config)
        self._remember(key, trace)
        self._store_disk(key, trace)
        return trace

    def clear(self) -> None:
        """Drop the memory tier and reset counters (disk files stay)."""
        self._memory.clear()
        self.hits = self.disk_hits = self.misses = 0
        self.corrupt_evictions = 0
        self.legacy_upgrades = 0

    def stats(self) -> dict[str, int]:
        """Counter snapshot: hits / disk_hits / misses / corrupt /
        legacy / entries."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "corrupt_evictions": self.corrupt_evictions,
            "legacy_upgrades": self.legacy_upgrades,
            "entries": len(self._memory),
        }


#: Per-process shared caches, keyed by resolved disk directory (None for
#: the memory-only one) -- sweep workers reuse one cache per process.
_shared: dict[Optional[str], TraceCache] = {}


def shared_cache(disk_dir: Optional[Union[str, Path]] = None) -> TraceCache:
    """Process-wide :class:`TraceCache` for *disk_dir*.

    ``disk_dir=None`` consults the ``REPRO_TRACE_CACHE_DIR`` environment
    variable before falling back to a memory-only cache.  Repeated calls
    with the same directory return the same instance, so every sweep
    task in a worker process shares one LRU.
    """
    if disk_dir is None:
        disk_dir = os.environ.get(CACHE_DIR_ENV) or None
    resolved = str(Path(disk_dir).resolve()) if disk_dir is not None else None
    cache = _shared.get(resolved)
    if cache is None:
        cache = TraceCache(disk_dir=resolved)
        _shared[resolved] = cache
    return cache
