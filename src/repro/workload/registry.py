"""Workload registry: pluggable traffic/mobility scenario models.

The paper's Section 5.1 workload (exponential arrivals, uniform
destinations, one mobility pattern) is a single point in a much larger
scenario space -- and the protocol rankings of the figures are known to
be sensitive to traffic and mobility shape.  This registry makes the
workload a named, parameterized model the driver consults per decision,
mirroring the protocol registry of :mod:`repro.engine.registry`:

* :class:`WorkloadModel` -- the base class; three hooks shape a run:
  :meth:`~WorkloadModel.arrival_delay` (when the next application
  operation fires), :meth:`~WorkloadModel.choose_destination` (where a
  send goes) and :meth:`~WorkloadModel.residence_scale` (a multiplier
  on cell-residence times).  The defaults implement the paper's model
  exactly, so the registered ``"paper"`` entry is bit-identical to the
  pre-registry driver.
* :func:`register_workload` -- class decorator adding a model under a
  name; the builtins live in :mod:`repro.workload.models`.
* :func:`get_workload` / :func:`make_workload` -- resolution with the
  same did-you-mean ergonomics as unknown protocols
  (:class:`UnknownWorkloadError`).
* :func:`parse_workload_spec` / :func:`resolve_workload_spec` -- the
  CLI's ``NAME[:key=value,...]`` spec syntax.

Models declare their parameters as :class:`Param` specs (default +
caster + docstring), so CLI strings and programmatic values coerce
identically and typos fail with :class:`WorkloadParamError` before
anything runs.

Layering: this module must not import :mod:`repro.engine` (the engine
imports the workload package at module level); the errors here subclass
:class:`ValueError` directly so every consumer that catches the
engine's ``ValueError``-based errors keeps working.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.rng import RandomStreams
    from repro.workload.config import WorkloadConfig


class WorkloadError(ValueError):
    """Base class of workload-registry misuse errors."""


def _suggest(name: str, known) -> tuple[str, ...]:
    """Closest registered names to *name* (case-insensitive)."""
    by_fold = {k.casefold(): k for k in known}
    matches = difflib.get_close_matches(
        name.casefold(), list(by_fold), n=3, cutoff=0.5
    )
    return tuple(by_fold[m] for m in matches)


class UnknownWorkloadError(WorkloadError):
    """A requested workload name is not registered.

    Mirrors :class:`repro.engine.errors.UnknownProtocolError`: the
    message carries closest-match suggestions and every known name, so
    the CLI, ``RunSpec`` planning and ``SweepConfig.validate`` all fail
    with the same actionable text.
    """

    def __init__(self, name: str, known):
        self.name = name
        self.known = tuple(sorted(known))
        self.suggestions = _suggest(name, self.known)
        hint = (
            f"; did you mean {' or '.join(repr(s) for s in self.suggestions)}?"
            if self.suggestions
            else ""
        )
        super().__init__(
            f"unknown workload {name!r}{hint}; known: {list(self.known)}"
        )


class WorkloadParamError(WorkloadError):
    """A workload parameter is unknown, missing or uninterpretable."""


def cast_bool(value: Any) -> bool:
    """Boolean caster accepting CLI spellings (true/false/1/0/...)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        v = value.strip().casefold()
        if v in ("1", "true", "yes", "on"):
            return True
        if v in ("0", "false", "no", "off"):
            return False
    raise ValueError(f"not a boolean: {value!r}")


@dataclass(frozen=True)
class Param:
    """Declaration of one workload-model parameter."""

    default: Any = None
    cast: Callable[[Any], Any] = float
    doc: str = ""
    required: bool = False


class WorkloadModel:
    """Base workload model; the defaults are the paper's Section 5.1.

    Subclasses override any of the three hooks and declare their knobs
    in :attr:`PARAMS`; construction coerces the supplied parameters
    through the declared casters (so CLI strings and typed values are
    interchangeable) and calls :meth:`_setup`.

    Models may keep per-host state (see the bursty model) -- one
    instance drives exactly one simulation.  Determinism contract: a
    hook may only draw from *rng* using stable stream names and must
    make the same draws for the same (config, call sequence), so a
    seeded run stays reproducible.
    """

    #: Registered name (set by :func:`register_workload`).
    name: str = "?"
    #: Parameter declarations: name -> :class:`Param`.
    PARAMS: Mapping[str, Param] = {}

    def __init__(self, config: "WorkloadConfig", **params: Any):
        self.config = config
        self.params = self.coerce_params(params)
        self._setup()

    def _setup(self) -> None:
        """Post-coercion hook: range checks, tables, file handles."""

    @classmethod
    def coerce_params(cls, params: Mapping[str, Any]) -> dict[str, Any]:
        """Validate and cast *params* against :attr:`PARAMS`.

        Unknown keys raise :class:`WorkloadParamError` with did-you-mean
        suggestions; missing non-required keys take their defaults.
        Usable without instantiation (plan-time validation).
        """
        out: dict[str, Any] = {}
        for key, value in params.items():
            spec = cls.PARAMS.get(key)
            if spec is None:
                hits = _suggest(key, cls.PARAMS)
                hint = (
                    f"; did you mean {' or '.join(repr(h) for h in hits)}?"
                    if hits
                    else ""
                )
                raise WorkloadParamError(
                    f"workload {cls.name!r} has no parameter {key!r}{hint}; "
                    f"accepted: {sorted(cls.PARAMS)}"
                )
            try:
                out[key] = spec.cast(value)
            except (TypeError, ValueError) as exc:
                raise WorkloadParamError(
                    f"workload {cls.name!r} parameter {key!r}: "
                    f"cannot interpret {value!r} ({exc})"
                ) from None
        for key, spec in cls.PARAMS.items():
            if key in out:
                continue
            if spec.required:
                raise WorkloadParamError(
                    f"workload {cls.name!r} requires parameter {key!r} "
                    f"({spec.doc or 'no description'})"
                )
            out[key] = spec.default
        return out

    # -- hooks (defaults = the paper's model) ---------------------------
    def arrival_delay(
        self, host: int, rng: "RandomStreams", now: float
    ) -> float:
        """Delay until *host*'s next application operation."""
        return rng.exponential(
            f"app/internal/{host}", self.config.internal_mean
        )

    def choose_destination(
        self, host: int, candidates, rng: "RandomStreams", now: float
    ):
        """Destination of a send among *candidates* (never empty).

        *candidates* is an ascending sequence of host ids excluding
        *host* (the connected ones under ``send_to_connected_only``,
        every other host otherwise).  Return ``None`` to drop the send
        (it becomes a no-op, like an empty candidate set).
        """
        return candidates[
            rng.choice_index(f"app/dst/{host}", len(candidates))
        ]

    def residence_scale(self, host: int, now: float) -> float:
        """Multiplier applied to the mobility model's residence time."""
        return 1.0

    # -- introspection ---------------------------------------------------
    @classmethod
    def describe(cls) -> dict[str, Any]:
        """Registry-table entry: name, summary line, parameter specs."""
        doc = (cls.__doc__ or "").strip().splitlines()
        return {
            "name": cls.name,
            "doc": doc[0] if doc else "",
            "params": {
                key: {
                    "default": spec.default,
                    "required": spec.required,
                    "doc": spec.doc,
                }
                for key, spec in cls.PARAMS.items()
            },
        }


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type[WorkloadModel]] = {}


def register_workload(name: str):
    """Class decorator registering a :class:`WorkloadModel` under *name*.

    Re-registering the *same* class is a no-op (module reloads);
    claiming an existing name with a different class raises
    :class:`WorkloadError` -- shadowing is never allowed, matching the
    protocol registry's contract.
    """

    def deco(cls: type[WorkloadModel]) -> type[WorkloadModel]:
        if not (isinstance(cls, type) and issubclass(cls, WorkloadModel)):
            raise TypeError(
                f"@register_workload({name!r}) needs a WorkloadModel "
                f"subclass, got {cls!r}"
            )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise WorkloadError(
                f"workload name {name!r} is already registered "
                f"({existing.__qualname__}); names must not shadow "
                "existing models"
            )
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return deco


def _ensure_builtins() -> None:
    """Import the builtin models so their registrations exist."""
    import repro.workload.models  # noqa: F401  (registration side effect)


def workload_names() -> list[str]:
    """Sorted names of every registered workload model."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_workload(name: str) -> type[WorkloadModel]:
    """The model class registered under *name*.

    Raises :class:`UnknownWorkloadError` (with did-you-mean
    suggestions) when no such model exists.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownWorkloadError(name, _REGISTRY) from None


def check_workload(name: str, params: Mapping[str, Any]) -> dict[str, Any]:
    """Validate a (name, params) pair without instantiating the model.

    Returns the coerced parameter dict.  This is the cheap plan-time /
    sweep-validation entry: casters and required-parameter checks run,
    environment-dependent checks (schedule files existing, ...) wait
    for instantiation in the driver.
    """
    return get_workload(name).coerce_params(params)


def make_workload(config: "WorkloadConfig") -> WorkloadModel:
    """Instantiate the model *config* names, with its parameters."""
    cls = get_workload(config.workload)
    return cls(config, **config.workload_params)


def parse_workload_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split a ``NAME[:key=value,...]`` spec into (name, raw params).

    Values stay strings; pass them through :func:`check_workload` (or
    let the model coerce them) for typing.  Malformed syntax raises
    :class:`WorkloadParamError`.
    """
    name, _, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise WorkloadParamError(f"empty workload name in spec {spec!r}")
    params: dict[str, str] = {}
    if rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key = key.strip()
            if not eq or not key:
                raise WorkloadParamError(
                    f"malformed workload spec {spec!r}: expected "
                    f"key=value, got {item.strip()!r}"
                )
            params[key] = value.strip()
    return name, params


def resolve_workload_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Parse *and* validate a spec: (registered name, coerced params).

    The one-call form the CLI and ``SweepConfig`` use; raises
    :class:`UnknownWorkloadError` / :class:`WorkloadParamError` exactly
    like :func:`check_workload`.
    """
    name, raw = parse_workload_spec(spec)
    return name, check_workload(name, raw)
