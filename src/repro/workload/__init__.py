"""Workload: the paper's application/mobility model and trace generation.

* :class:`~repro.workload.config.WorkloadConfig` -- every knob of the
  paper's Section 5.1 simulation model.
* :func:`~repro.workload.driver.generate_trace` -- run the full mobile
  system simulation and emit a protocol-independent
  :class:`~repro.core.trace.Trace`.
* :func:`~repro.workload.driver.run_online` -- same workload with a
  checkpointing protocol embedded in the simulation (supports
  non-negligible checkpoint latency).
* :mod:`~repro.workload.scenarios` -- named configurations for each of
  the paper's figures.
* :mod:`~repro.workload.cache` -- content-addressed trace cache
  (memory LRU + optional on-disk store) keyed by the generating config.
"""

from repro.workload.cache import TraceCache, config_key, shared_cache
from repro.workload.config import WorkloadConfig
from repro.workload.driver import OnlineResult, generate_trace, run_online
from repro.workload.scenarios import figure_config, paper_scenarios

__all__ = [
    "OnlineResult",
    "TraceCache",
    "WorkloadConfig",
    "config_key",
    "figure_config",
    "generate_trace",
    "paper_scenarios",
    "run_online",
    "shared_cache",
]
