"""Workload: the paper's application/mobility model and trace generation.

* :class:`~repro.workload.config.WorkloadConfig` -- every knob of the
  paper's Section 5.1 simulation model, including which registered
  workload model shapes the run (``workload`` / ``workload_params``).
* :mod:`~repro.workload.registry` -- the workload-model registry:
  :class:`WorkloadModel` + :func:`register_workload` discovery, typed
  errors with did-you-mean suggestions, ``NAME[:k=v,...]`` spec
  parsing.  Builtin models live in :mod:`~repro.workload.models`.
* :func:`~repro.workload.driver.generate_trace` -- run the full mobile
  system simulation and emit a protocol-independent
  :class:`~repro.core.trace.Trace`.
* :func:`~repro.workload.driver.generate_streamed` -- same simulation,
  compiled into SoA blocks on the fly (bounded staging memory).
* :func:`~repro.workload.driver.run_online` -- same workload with a
  checkpointing protocol embedded in the simulation (supports
  non-negligible checkpoint latency).
* :mod:`~repro.workload.scenarios` -- named configurations for each of
  the paper's figures.
* :mod:`~repro.workload.cache` -- content-addressed trace cache
  (memory LRU + optional on-disk store) keyed by the generating config.
"""

from repro.workload.cache import TraceCache, config_key, shared_cache
from repro.workload.config import WorkloadConfig
from repro.workload.driver import (
    OnlineResult,
    generate_streamed,
    generate_trace,
    run_online,
)
from repro.workload.registry import (
    Param,
    UnknownWorkloadError,
    WorkloadError,
    WorkloadModel,
    WorkloadParamError,
    check_workload,
    get_workload,
    make_workload,
    parse_workload_spec,
    register_workload,
    resolve_workload_spec,
    workload_names,
)
from repro.workload.scenarios import figure_config, paper_scenarios

__all__ = [
    "OnlineResult",
    "Param",
    "TraceCache",
    "UnknownWorkloadError",
    "WorkloadConfig",
    "WorkloadError",
    "WorkloadModel",
    "WorkloadParamError",
    "check_workload",
    "config_key",
    "figure_config",
    "generate_streamed",
    "generate_trace",
    "get_workload",
    "make_workload",
    "paper_scenarios",
    "parse_workload_spec",
    "register_workload",
    "resolve_workload_spec",
    "run_online",
    "shared_cache",
    "workload_names",
]
